"""Hardware/software tracing (section VII).

"A history of function execution within the different processes, and their
access to memories and peripherals, is of great help to understand and
identify the cause of a defect."

The tracer records, without perturbing the platform:

- instruction retirement per core (optional, verbose);
- function call/return history (``jal``/``ret`` detection);
- every bus access with its master;
- interrupt-line edges.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.obs.trace import TraceSink
from repro.vp.isa import Instr
from repro.vp.iss import Cpu
from repro.vp.soc import SoC


@dataclass
class TraceEvent:
    """One recorded event."""

    time: float
    kind: str  # 'instr' | 'call' | 'ret' | 'mem' | 'irq'
    core: Optional[int] = None
    detail: Dict[str, Any] = field(default_factory=dict)

    def __repr__(self) -> str:
        who = f"core{self.core}" if self.core is not None else "-"
        return f"[{self.time:>8}] {who:>6} {self.kind:<6} {self.detail}"


class Tracer:
    """Non-intrusive event recorder over one SoC.

    A thin adapter over the shared observability sink: every recorded
    event lands in the in-memory :attr:`events` list (the query API
    below), and -- when a :class:`~repro.obs.TraceSink` is supplied --
    is also emitted into it: ``jal``/``ret`` become call-stack spans on
    the per-core ``vp/core<N>`` tracks, bus accesses and irq edges
    become instants on ``vp/bus`` and ``vp/irq``.

    Registration is append-only (``Cpu.add_post_instr_hook``), so any
    number of tracers and debuggers can observe one SoC simultaneously.
    """

    def __init__(self, soc: SoC, trace_instructions: bool = False,
                 trace_memory: bool = True,
                 sink: Optional[TraceSink] = None) -> None:
        self.soc = soc
        self.trace_instructions = trace_instructions
        self.sink = sink
        self.events: List[TraceEvent] = []
        self.call_depth: Dict[int, int] = {c.core_id: 0 for c in soc.cores}
        for core in soc.cores:
            core.add_post_instr_hook(self._make_instr_hook())
        if trace_memory:
            soc.bus.observe(self._on_bus)
        for name, signal in soc.signals().items():
            if name.endswith(".irq"):
                signal.changed.subscribe(self._make_irq_hook(name))

    def _record(self, event: TraceEvent) -> None:
        self.events.append(event)

    def _core_track(self, core_id: int) -> str:
        return f"vp/core{core_id}"

    def _make_instr_hook(self):
        def hook(core: Cpu, instr: Instr) -> None:
            now = self.soc.sim.now
            if instr.op == "jal":
                self.call_depth[core.core_id] += 1
                self._record(TraceEvent(
                    now, "call", core.core_id,
                    {"target": instr.args[0],
                     "depth": self.call_depth[core.core_id]}))
                if self.sink is not None:
                    self.sink.begin(f"fn@{instr.args[0]}",
                                    track=self._core_track(core.core_id),
                                    ts=now)
            elif instr.op == "ret":
                self._record(TraceEvent(
                    now, "ret", core.core_id,
                    {"depth": self.call_depth[core.core_id]}))
                self.call_depth[core.core_id] = max(
                    0, self.call_depth[core.core_id] - 1)
                if self.sink is not None:
                    self.sink.end(track=self._core_track(core.core_id),
                                  ts=now)
            elif self.trace_instructions:
                self._record(TraceEvent(
                    now, "instr", core.core_id,
                    {"op": instr.op, "pc": core.pc}))
        return hook

    def _on_bus(self, kind: str, address: int, value: int,
                master: str) -> None:
        now = self.soc.sim.now
        region = self.soc.bus.region_of(address)
        self._record(TraceEvent(
            now, "mem", None,
            {"op": kind, "addr": address, "value": value,
             "master": master, "region": region}))
        if self.sink is not None:
            self.sink.instant(f"{kind}@{region}", track="vp/bus", ts=now,
                              addr=address, value=value, master=master)

    def _make_irq_hook(self, name: str):
        def hook(payload: Any) -> None:
            now = self.soc.sim.now
            old, new = payload
            self._record(TraceEvent(
                now, "irq", None,
                {"signal": name, "old": old, "new": new}))
            if self.sink is not None:
                self.sink.instant(name, track="vp/irq", ts=now,
                                  old=old, new=new)
        return hook

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def of_kind(self, kind: str) -> List[TraceEvent]:
        return [e for e in self.events if e.kind == kind]

    def accesses_to(self, address: int, kind: Optional[str] = None) -> List[TraceEvent]:
        return [e for e in self.events
                if e.kind == "mem" and e.detail["addr"] == address
                and (kind is None or e.detail["op"] == kind)]

    def by_master(self, master: str) -> List[TraceEvent]:
        return [e for e in self.events
                if e.kind == "mem" and e.detail["master"] == master]

    def call_history(self, core_id: int) -> List[TraceEvent]:
        return [e for e in self.events
                if e.kind in ("call", "ret") and e.core == core_id]

    def interleaving_signature(self, address: int) -> str:
        """Order of masters touching an address -- a compact fingerprint of
        the schedule used by the determinism tests."""
        return ",".join(e.detail["master"]
                        for e in self.accesses_to(address))


__all__ = ["TraceEvent", "Tracer"]
