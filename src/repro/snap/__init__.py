"""repro.snap -- exact whole-SoC checkpoint/restore.

The restorable counterpart to ``Debugger.system_snapshot()``'s
read-only inspection view: :func:`checkpoint` parks every core at a
reference-path boundary and captures kernel queue + architectural state
into a versioned, digest-sealed :class:`Snapshot`; :func:`restore`
rebuilds the exact run -- bit-identical final RAM, registers, end time
and bus-access order on all four ISS backends.  Powers time travel in
:mod:`repro.vp.debugger` and warm-started campaigns in
:mod:`repro.snap.warm`.
"""

from repro.snap.core import (SNAP_VERSION, Snapshot, SnapshotError,
                             checkpoint, restore)
from repro.snap.warm import cold_run_job, warm_run_job

__all__ = [
    "SNAP_VERSION",
    "Snapshot",
    "SnapshotError",
    "checkpoint",
    "restore",
    "cold_run_job",
    "warm_run_job",
]
