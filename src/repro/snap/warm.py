"""Checkpoint-seeded farm jobs: skip a shared warmup prefix.

Long campaigns often run many variations of one workload whose first N
cycles are identical (boot, table setup, cache priming).  Capture that
prefix **once** with :func:`repro.snap.checkpoint`, embed the snapshot
dict in each job's config, and every shard resumes from the warm state
instead of re-executing the prefix -- deterministically, because a
restored run is bit-identical to the uninterrupted one.

Both jobs below are module-level (farm requirement: importable refs)
and return the same JSON summary shape, so a warm campaign can be
validated shard-by-shard against a cold reference campaign.
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict

from repro.farm.job import canonical_json
from repro.snap.core import Snapshot


def _summary(soc: Any) -> Dict[str, Any]:
    ram_sha = hashlib.sha256(
        canonical_json(list(soc.ram.words)).encode("utf-8")).hexdigest()
    return {
        "time": soc.sim.now,
        "halted": soc.all_halted,
        "uart": list(soc.uart.words),
        "ram_sha": ram_sha,
        "regs": [list(core.regs) for core in soc.cores],
        "pcs": [core.pc for core in soc.cores],
    }


def _poke(soc: Any, config: Dict[str, Any], seed: int) -> None:
    # Per-shard variation: write the seed into a RAM word the workload
    # reads only *after* the shared warmup prefix.
    addr = config.get("poke")
    if addr is not None:
        soc.bus.poke(int(addr), int(seed))


def warm_run_job(config: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """Resume from the embedded snapshot, apply the shard seed, run."""
    snap = Snapshot.from_dict(config["snapshot"])
    soc = snap.rebuild(wiring=config.get("wiring"))
    _poke(soc, config, seed)
    soc.run(until=config.get("until"))
    return _summary(soc)


def cold_run_job(config: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """Reference twin: the same workload executed from cycle 0."""
    from repro.vp.soc import SoC, SoCConfig
    soc = SoC(SoCConfig(**config["config"]),
              {int(core): source
               for core, source in config["programs"].items()})
    for core, line, signal_name in (config.get("wiring") or []):
        soc.intcs[core].add_source(line, soc.signal(signal_name))
    _poke(soc, config, seed)
    soc.run(until=config.get("until"))
    return _summary(soc)


def run_warm_campaign(snapshot: Any, seeds: Any, *,
                      poke: Any = None, until: Any = None,
                      wiring: Any = None, executor: Any = None,
                      name: str = "warm-sweep", **farm: Any) -> Any:
    """Sweep ``seeds`` through :func:`warm_run_job` from one snapshot.

    The snapshot (object or dict) is embedded in every job config;
    execution policy comes from ``executor=`` and/or the uniform farm
    keywords (``jobs=``, ``backend=``, ``cache=``, ``shards=``, ...).
    Returns the :class:`repro.farm.CampaignResult` (failures raised).
    """
    from repro.farm.engine import Campaign, resolve_executor
    if isinstance(snapshot, Snapshot):
        snapshot = snapshot.to_dict()
    config: Dict[str, Any] = {"snapshot": snapshot}
    if poke is not None:
        config["poke"] = poke
    if until is not None:
        config["until"] = until
    if wiring is not None:
        config["wiring"] = wiring
    campaign = Campaign.build(name,
                              executor=resolve_executor(executor, **farm))
    for seed in seeds:
        campaign.add(warm_run_job, config=config, seed=seed,
                     name=f"{name}[seed={seed}]")
    return campaign.run().raise_on_failure()


__all__ = ["cold_run_job", "run_warm_campaign", "warm_run_job"]
