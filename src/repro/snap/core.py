"""Exact whole-SoC checkpoint/restore.

A :class:`Snapshot` is a *versioned, JSON-pure, digest-sealed* image of
one :class:`~repro.vp.soc.SoC` -- architectural state plus an exact
reconstruction spec for the kernel event queue -- such that a run
restored from it is **bit-identical** to the uninterrupted run: same
final RAM and register files, same end time, same bus-access order,
same observable trace suffix, on every ISS backend.

Python generators cannot be pickled, so the snapshot never serializes a
process.  Instead:

**Parking.**  ``checkpoint()`` acquires the debugger's sync contract on
every core and steps the kernel until each non-halted core is suspended
at the reference path's per-instruction ``yield Delay(cycles)`` (its
``_wait_state == "ref"``) with no speculative lane batch pending.  At
that suspension point the continuation is a pure function of
architectural state -- the pending instruction is ``program[pc]`` --
which is *not* true of the batching tiers' mid-batch yields (registers
already hold end-of-batch values there).  Parking executes exactly what
the uninterrupted run would execute (per-instruction synchronization is
architecturally invisible, the PR-2/PR-7 equivalence invariant), so
"checkpoint at cycle N" means "the earliest parkable boundary at or
after N" and the capturing run continues bit-identically afterwards.

**Claims.**  Every non-cancelled item in the kernel queue must be
*claimed* by an owner that knows how to re-create it: a core's recycled
resume record, a timer's armed expiry, the DMA engine's in-flight
transfer wakeup, or a fault injector's scheduled fault / stuck-irq
release.  An unclaimed item (or an alive process outside the SoC, e.g.
an OS-scheduler or RT-executive process) raises :class:`SnapshotError`
-- exactness is never silently approximated.

**Rank-ordered restore.**  Claims are recorded with their global rank
-- the queue order ``(time, priority, seq)`` -- and re-armed in exactly
that order, so relative sequence numbers (the tie-break within one
``(time, priority)`` class) are preserved.  Core continuations are
resume shims (:meth:`~repro.vp.iss.Cpu._resume_run`) spawned with
``start_delay = wake - now`` and **no leading yield**: the shim body
executes *at* the wake event, replaying the parked instruction before
delegating back into the normal execution loop.
"""

from __future__ import annotations

import hashlib
from dataclasses import asdict
from typing import Any, Dict, List, Optional

from repro.core.serde import canonical_json, json_roundtrip, serde

SNAP_VERSION = "repro.snap/1"

_MAX_SETTLE_EVENTS = 1_000_000


class SnapshotError(Exception):
    """Raised when a platform cannot be exactly captured or restored."""


# ----------------------------------------------------------------------
# structural signature
# ----------------------------------------------------------------------

def _program_digest(program: Any) -> str:
    if program.source:
        payload = program.source
    else:
        payload = (repr(program.instructions) + "|"
                   + repr(sorted(program.data.items())))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def _plan_digest(injector: Any) -> str:
    payload = canonical_json(injector.plan.to_dict())
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def _signature(soc: Any, injector: Any) -> Dict[str, Any]:
    """What must match between the captured and the restoring platform.

    State is restored; *structure* (config, programs, fault plan) must be
    rebuilt identically by the caller -- including any interrupt-source
    wiring (``intc.add_source``), which lives in builder code the
    snapshot cannot see.
    """
    return {
        "config": json_roundtrip(asdict(soc.config)),
        "programs": [_program_digest(core.program) for core in soc.cores],
        "plan": _plan_digest(injector) if injector is not None else None,
    }


# ----------------------------------------------------------------------
# parking
# ----------------------------------------------------------------------

def _parked(soc: Any) -> bool:
    for core in soc.cores:
        if core.halted:
            continue
        proc = core.process
        if proc is None or not proc.alive:
            raise SnapshotError(
                f"{core.name} is not halted but its process is dead")
        if core._wait_state != "ref" or core._lane_pending is not None:
            return False
    return True


def _settle(soc: Any) -> None:
    """Drive every core to a reference-path suspension point.

    Runs under ``acquire_sync``: in-flight batches complete at their
    scheduled wake (executing exactly the uninterrupted instruction
    stream), after which each core runs per-instruction and is parked at
    its next ``yield``.
    """
    sim = soc.sim
    for _ in range(_MAX_SETTLE_EVENTS):
        if _parked(soc):
            return
        if not sim.step():
            break
    if not _parked(soc):
        raise SnapshotError(
            "could not park every core at a reference-path boundary "
            f"within {_MAX_SETTLE_EVENTS} events")


# ----------------------------------------------------------------------
# claims
# ----------------------------------------------------------------------

def _live(item: Any) -> bool:
    return item is not None and not item.cancelled and not item.consumed


def _rearm_of(proc: Any, what: str) -> Any:
    item = proc._rearm_item
    if not proc._rearm_busy or not _live(item):
        raise SnapshotError(f"{what} has no claimable pending wakeup")
    return item


def _claims(soc: Any, injector: Any) -> List[Dict[str, Any]]:
    """Claim every queued kernel item; rank-ordered reconstruction spec."""
    sim = soc.sim
    owners: Dict[int, Any] = {}
    known_procs = set()

    for core in soc.cores:
        proc = core.process
        if proc is None or not proc.alive:
            continue
        known_procs.add(id(proc))
        item = _rearm_of(proc, core.name)
        if item.priority != core.priority:
            raise SnapshotError(
                f"{core.name} wakeup at unexpected priority "
                f"{item.priority}")
        owners[id(item)] = {"kind": "core", "index": core.core_id}

    for index, timer in enumerate(soc.timers):
        if _live(timer._armed_item):
            owners[id(timer._armed_item)] = {"kind": "timer",
                                             "index": index}

    dma = soc.dma
    if dma.busy:
        proc = dma._xfer_proc
        if proc is None or not proc.alive:
            raise SnapshotError("dma is busy but its transfer process "
                                "is dead")
        known_procs.add(id(proc))
        item = _rearm_of(proc, "dma transfer")
        owners[id(item)] = {"kind": "dma", "index": 0}

    if injector is not None:
        for item, kind, index in injector.snap_claims():
            owners[id(item)] = {"kind": kind, "index": index}

    for proc in sim.processes:
        if proc.alive and id(proc) not in known_procs:
            raise SnapshotError(
                f"process {proc.name!r} is not owned by the SoC; "
                "checkpointing covers cores, timers, DMA and fault "
                "injection only")

    entries = []
    for item in sim._queue:
        if item.cancelled or item.consumed:
            continue
        owner = owners.pop(id(item), None)
        if owner is None:
            raise SnapshotError(
                f"unclaimed kernel item at t={item.time} "
                f"(priority {item.priority}); cannot capture exactly")
        entries.append((item.time, item.priority, item.seq, owner))
    if owners:
        raise SnapshotError("owner bookkeeping references items missing "
                            "from the kernel queue")

    entries.sort(key=lambda e: (e[0], e[1], e[2]))
    return [{"time": time, "priority": priority, **owner}
            for time, priority, _seq, owner in entries]


# ----------------------------------------------------------------------
# capture
# ----------------------------------------------------------------------

def _capture(soc: Any, injector: Any, note: str,
             embed_programs: bool) -> Dict[str, Any]:
    sim = soc.sim
    queue = _claims(soc, injector)

    cores = []
    for core in soc.cores:
        cores.append({
            "pc": core.pc,
            "regs": list(core.regs),
            "halted": core.halted,
            "interrupts_enabled": core.interrupts_enabled,
            "in_isr": core.in_isr,
            "epc": core.epc,
            "saved_regs": list(core.saved_regs),
            "cycle_count": core.cycle_count,
            "instr_count": core.instr_count,
            "irq": core.irq.read(),
            "halted_signal": core.halted_signal.read(),
            "pc_signal": core.pc_signal.read(),
        })

    timers = []
    for timer in soc.timers:
        timers.append({
            "enabled": timer.enabled,
            "auto_reload": timer.auto_reload,
            "period": timer.period,
            "expired": timer.expired,
            "expirations": timer.expirations,
            "deadline": timer._deadline,
            "irq": timer.irq.read(),
        })

    dma = soc.dma
    sem = soc.semaphores
    mbox = soc.mailboxes
    data: Dict[str, Any] = {
        "version": SNAP_VERSION,
        "note": note,
        "time": sim.now,
        "event_count": sim.event_count,
        "signature": _signature(soc, injector),
        "programs": None,
        "cores": cores,
        "ram": list(soc.ram.words),
        "sem": {"values": list(sem.values),
                "acquire_attempts": list(sem.acquire_attempts),
                "acquire_successes": list(sem.acquire_successes),
                "releases": list(sem.releases)},
        "timers": timers,
        "dma": {"src": dma.src, "dst": dma.dst, "length": dma.length,
                "busy": dma.busy, "done": dma.done,
                "transfers_completed": dma.transfers_completed,
                "words_moved": dma.words_moved,
                "xfer_src": dma._xfer_src, "xfer_dst": dma._xfer_dst,
                "xfer_len": dma._xfer_len,
                "xfer_index": dma._xfer_index,
                "irq": dma.irq.read()},
        "uart": list(soc.uart.words),
        "mbox": {"queues": [[list(pair) for pair in queue_]
                            for queue_ in mbox.queues],
                 "doorbells": [d.read() for d in mbox.doorbells],
                 "tx_dst": list(mbox.tx_dst),
                 "last_src": list(mbox.last_src),
                 "dropped": mbox.dropped},
        "intc": [{"pending": intc.pending, "mask": intc.mask}
                 for intc in soc.intcs],
        "bus": {"reads": soc.bus.reads, "writes": soc.bus.writes},
        "queue": queue,
        "faults": injector.snap_state() if injector is not None else None,
    }
    if embed_programs:
        sources = {}
        for core in soc.cores:
            if not core.program.source:
                sources = None
                break
            sources[str(core.core_id)] = core.program.source
        data["programs"] = sources
    return data


def checkpoint(soc: Any, injector: Any = None, note: str = "",
               embed_programs: bool = True) -> "Snapshot":
    """Park the platform and capture an exact, restorable snapshot.

    Advances the simulation to the earliest parkable boundary (a few
    events at most; zero while a debugger is attached) -- executing
    exactly what the uninterrupted run would -- then releases the cores,
    so the capturing run itself continues bit-identically.

    ``injector`` must be passed when a :class:`~repro.faults.FaultInjector`
    drives this platform, so its pending faults, stuck-irq releases and
    RNG streams are captured.  ``embed_programs=True`` stores assembly
    sources (when available) so :meth:`Snapshot.rebuild` can reconstruct
    the platform from the snapshot alone.
    """
    for core in soc.cores:
        if core.stall_hook is not None:
            raise SnapshotError(
                f"{core.name} has a stall hook installed; intrusive "
                "probe state cannot be captured exactly")
    soc.start()
    soc.acquire_sync()
    try:
        _settle(soc)
        data = _capture(soc, injector, note, embed_programs)
    finally:
        soc.release_sync()
    data = json_roundtrip(data)
    data["digest"] = _digest(data)
    return Snapshot(data)


def _digest(data: Dict[str, Any]) -> str:
    body = {key: value for key, value in data.items() if key != "digest"}
    return hashlib.sha256(
        canonical_json(body).encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# restore
# ----------------------------------------------------------------------

def restore(snapshot: "Snapshot", soc: Any,
            injector: Any = None) -> Any:
    """Load ``snapshot`` into ``soc`` (in place); returns ``soc``.

    The target must be *structurally identical* to the captured
    platform: same config, same programs, same fault plan (verified via
    the snapshot's signature) and -- the caller's responsibility -- the
    same interrupt-source wiring.  Works both on a freshly built SoC and
    on the capturing SoC itself (time travel): live processes are closed
    without side effects, the kernel queue is rebuilt from the claims in
    rank order, and signal values are forced without firing events.
    """
    data = snapshot.data
    if data.get("version") != SNAP_VERSION:
        raise SnapshotError(f"unsupported snapshot version "
                            f"{data.get('version')!r}")
    if data["faults"] is not None and injector is None:
        raise SnapshotError("snapshot carries fault-injector state; "
                            "pass the injector to restore()")
    expected = json_roundtrip(_signature(soc, injector))
    if expected != data["signature"]:
        raise SnapshotError(
            "structural mismatch between snapshot and target platform: "
            f"snapshot {data['signature']} != target {expected}")

    sim = soc.sim
    # -- tear down: close live generators without triggering done events
    for proc in sim.processes:
        if proc.alive:
            if proc._waiting_on is not None \
                    and proc._resume_handle is not None:
                proc._waiting_on.remove_waiter(proc._resume_handle)
                proc._waiting_on = None
                proc._resume_handle = None
            proc.alive = False
            proc.body.close()
    sim.processes = []
    sim._queue.clear()
    sim._pending_count = 0
    sim.now = data["time"]
    sim.event_count = data["event_count"]
    soc._started = True

    # -- architectural state
    soc.ram.words[:] = data["ram"]
    for core, state in zip(soc.cores, data["cores"]):
        core.pc = state["pc"]
        core.regs = list(state["regs"])
        core.halted = state["halted"]
        core.interrupts_enabled = state["interrupts_enabled"]
        core.in_isr = state["in_isr"]
        core.epc = state["epc"]
        core.saved_regs = list(state["saved_regs"])
        core.cycle_count = state["cycle_count"]
        core.instr_count = state["instr_count"]
        core._lane_pending = None
        core._wait_state = None
        core.process = None
        core.irq.force(state["irq"])
        core.halted_signal.force(state["halted_signal"])
        core.pc_signal.force(state["pc_signal"])
    for group in soc.lane_groups:
        for lane in group.cores:
            group.unpark(lane)

    sem = soc.semaphores
    sem.values[:] = data["sem"]["values"]
    sem.acquire_attempts[:] = data["sem"]["acquire_attempts"]
    sem.acquire_successes[:] = data["sem"]["acquire_successes"]
    sem.releases[:] = data["sem"]["releases"]

    for timer, state in zip(soc.timers, data["timers"]):
        timer.enabled = state["enabled"]
        timer.auto_reload = state["auto_reload"]
        timer.period = state["period"]
        timer.expired = state["expired"]
        timer.expirations = state["expirations"]
        timer._deadline = state["deadline"]
        timer._armed_item = None
        timer.irq.force(state["irq"])

    dma = soc.dma
    state = data["dma"]
    dma.src = state["src"]
    dma.dst = state["dst"]
    dma.length = state["length"]
    dma.busy = state["busy"]
    dma.done = state["done"]
    dma.transfers_completed = state["transfers_completed"]
    dma.words_moved = state["words_moved"]
    dma._xfer_src = state["xfer_src"]
    dma._xfer_dst = state["xfer_dst"]
    dma._xfer_len = state["xfer_len"]
    dma._xfer_index = state["xfer_index"]
    dma._xfer_proc = None
    dma.irq.force(state["irq"])

    soc.uart.words[:] = data["uart"]

    mbox = soc.mailboxes
    state = data["mbox"]
    for queue_, restored in zip(mbox.queues, state["queues"]):
        queue_.clear()
        queue_.extend(tuple(pair) for pair in restored)
    for doorbell, value in zip(mbox.doorbells, state["doorbells"]):
        doorbell.force(value)
    mbox.tx_dst[:] = state["tx_dst"]
    mbox.last_src[:] = state["last_src"]
    mbox.dropped = state["dropped"]

    for intc, state in zip(soc.intcs, data["intc"]):
        intc.pending = state["pending"]
        intc.mask = state["mask"]

    soc.bus.reads = data["bus"]["reads"]
    soc.bus.writes = data["bus"]["writes"]

    if injector is not None and data["faults"] is not None:
        injector.snap_restore(data["faults"])

    # -- rebuild the kernel queue in global rank order, so relative
    # sequence numbers within every (time, priority) class match the
    # captured run exactly
    for entry in data["queue"]:
        kind = entry["kind"]
        wake = entry["time"]
        if kind == "core":
            core = soc.cores[entry["index"]]
            core._wait_state = "ref"
            core.process = sim.spawn(core._resume_run(), name=core.name,
                                     priority=core.priority,
                                     start_delay=wake - sim.now)
        elif kind == "timer":
            timer = soc.timers[entry["index"]]
            timer._armed_item = sim.at(wake, timer._expire)
        elif kind == "dma":
            dma._xfer_proc = sim.spawn(dma._transfer(resume=True),
                                       name=f"{dma.name}.xfer",
                                       start_delay=wake - sim.now)
        elif kind == "fault":
            injector.snap_arm_fault(entry["index"])
        elif kind == "stuck_release":
            injector.snap_arm_stuck(entry["index"])
        else:
            raise SnapshotError(f"unknown claim kind {kind!r}")
    return soc


# ----------------------------------------------------------------------
# the snapshot object
# ----------------------------------------------------------------------

@serde("snapshot")
class Snapshot:
    """One captured platform image (JSON-pure payload + content digest).

    Follows the :class:`~repro.faults.plan.FaultPlan` idiom: exact
    ``to_dict()``/``from_dict()`` round-trips, so snapshots embed
    directly in farm job configs and result caches.
    """

    def __init__(self, data: Dict[str, Any]) -> None:
        self.data = data

    # -- identity ------------------------------------------------------
    @property
    def version(self) -> str:
        return self.data["version"]

    @property
    def time(self) -> float:
        return self.data["time"]

    @property
    def note(self) -> str:
        return self.data.get("note", "")

    @property
    def digest(self) -> str:
        return self.data["digest"]

    def size_bytes(self) -> int:
        return len(canonical_json(self.data).encode("utf-8"))

    # -- serialization -------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return json_roundtrip(self.data)

    @classmethod
    def from_dict(cls, payload: Dict[str, Any],
                  verify: bool = True) -> "Snapshot":
        data = json_roundtrip(payload)
        if data.get("version") != SNAP_VERSION:
            raise SnapshotError(f"unsupported snapshot version "
                                f"{data.get('version')!r}")
        if verify:
            recomputed = _digest(data)
            if data.get("digest") != recomputed:
                raise SnapshotError(
                    f"snapshot digest mismatch: recorded "
                    f"{data.get('digest')!r}, recomputed {recomputed!r}")
        return cls(data)

    # -- restore -------------------------------------------------------
    def restore(self, soc: Any, injector: Any = None) -> Any:
        return restore(self, soc, injector=injector)

    def rebuild(self, sim: Any = None,
                wiring: Optional[List[Any]] = None) -> Any:
        """Build a fresh :class:`~repro.vp.soc.SoC` from the embedded
        program sources and restore this snapshot into it.

        ``wiring`` declaratively re-creates interrupt-source routing the
        original builder did: a list of ``[core, line, signal_name]``
        triples applied via ``intc.add_source`` *before* the restore.
        Snapshots carrying fault-injector state cannot be rebuilt
        blindly -- build the SoC and injector manually and call
        :meth:`restore`.
        """
        from repro.vp.soc import SoC, SoCConfig
        if not self.data.get("programs"):
            raise SnapshotError(
                "snapshot has no embedded program sources; rebuild() "
                "needs checkpoint(embed_programs=True) and assembly-"
                "source programs")
        if self.data["faults"] is not None:
            raise SnapshotError(
                "snapshot carries fault-injector state; rebuild() "
                "cannot reconstruct the injector -- build the platform "
                "and injector manually, then call restore()")
        config = SoCConfig(**self.data["signature"]["config"])
        programs = {int(core_id): source
                    for core_id, source in self.data["programs"].items()}
        soc = SoC(config, programs, sim=sim)
        for core, line, signal_name in (wiring or []):
            soc.intcs[core].add_source(line, soc.signal(signal_name))
        return restore(self, soc)

    def __repr__(self) -> str:
        return (f"Snapshot(t={self.time}, {len(self.data['cores'])} "
                f"cores, digest={self.digest[:12]}...)")


__all__ = ["SNAP_VERSION", "Snapshot", "SnapshotError", "checkpoint",
           "restore"]
