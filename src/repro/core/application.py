"""Unified application wrapper."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional

from repro.cir.nodes import Program
from repro.cir.parser import parse
from repro.hopes.cic import CICApplication
from repro.rt.pipeline import PipelineSpec


class ApplicationKind(Enum):
    """How the application is specified."""

    SEQUENTIAL_C = "sequential_c"   # mini-C, enters the MAPS flow
    CIC = "cic"                     # task+channel spec, enters HOPES
    STREAM = "stream"               # stage pipeline, enters the RT executives


@dataclass
class Application:
    """One application, however it was written."""

    name: str
    kind: ApplicationKind
    source: Optional[str] = None
    program: Optional[Program] = None
    cic: Optional[CICApplication] = None
    pipeline: Optional[PipelineSpec] = None
    entry: str = "main"
    period: Optional[float] = None
    deadline: Optional[float] = None

    @classmethod
    def from_c(cls, name: str, source: str, entry: str = "main",
               period: Optional[float] = None,
               deadline: Optional[float] = None) -> "Application":
        return cls(name, ApplicationKind.SEQUENTIAL_C, source=source,
                   program=parse(source), entry=entry, period=period,
                   deadline=deadline)

    @classmethod
    def from_cic(cls, cic: CICApplication,
                 period: Optional[float] = None) -> "Application":
        return cls(cic.name, ApplicationKind.CIC, cic=cic, period=period)

    @classmethod
    def from_pipeline(cls, name: str,
                      pipeline: PipelineSpec) -> "Application":
        return cls(name, ApplicationKind.STREAM, pipeline=pipeline,
                   period=pipeline.period)

    def validate(self) -> None:
        if self.kind == ApplicationKind.SEQUENTIAL_C:
            if self.program is None:
                raise ValueError(f"{self.name}: no program")
            self.program.function(self.entry)
        elif self.kind == ApplicationKind.CIC:
            if self.cic is None:
                raise ValueError(f"{self.name}: no CIC spec")
            self.cic.validate()
        elif self.kind == ApplicationKind.STREAM:
            if self.pipeline is None:
                raise ValueError(f"{self.name}: no pipeline spec")
            self.pipeline.validate()


__all__ = ["Application", "ApplicationKind"]
