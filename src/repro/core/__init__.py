"""Unified design-flow API over every subsystem of the reproduction.

The paper surveys several tool flows; :mod:`repro.core` offers a single
entry point a downstream user would actually adopt:

- :class:`~repro.core.platform.PlatformDescription` -- one platform
  description, projectable to the MAPS platform model, the many-core OS
  machine model, and the HOPES architecture file;
- :class:`~repro.core.application.Application` -- one application wrapper
  over sequential C, CIC task graphs, or stream pipelines;
- :class:`~repro.core.flow.DesignFlow` -- routes an application through
  the right tool flow and returns a unified report;
- :mod:`repro.core.metrics` -- common measurement helpers.
"""

from repro.core.application import Application, ApplicationKind
from repro.core.platform import PlatformDescription
from repro.core.flow import DesignFlow, UnifiedReport
from repro.core.metrics import geometric_mean, speedup_curve, summarize_speedups

__all__ = [
    "Application", "ApplicationKind", "DesignFlow", "PlatformDescription",
    "UnifiedReport", "geometric_mean", "speedup_curve", "summarize_speedups",
]
