"""Unified design-flow API over every subsystem of the reproduction.

The paper surveys several tool flows; :mod:`repro.core` offers a single
entry point a downstream user would actually adopt:

- :class:`~repro.core.platform.PlatformDescription` -- one platform
  description, projectable to the MAPS platform model, the many-core OS
  machine model, and the HOPES architecture file;
- :class:`~repro.core.application.Application` -- one application wrapper
  over sequential C, CIC task graphs, or stream pipelines;
- :class:`~repro.core.flow.DesignFlow` -- routes an application through
  the right tool flow and returns a unified report;
- :mod:`repro.core.metrics` -- common measurement helpers;
- :mod:`repro.core.serde` -- the one versioned serialization protocol
  shared by cache entries, campaign manifests and backend wire frames.
"""

# serde is dependency-free and imported eagerly; the design-flow facade
# is resolved lazily (PEP 562) so low-level modules (maps.spec,
# faults.plan, ...) can `from repro.core.serde import serde` without
# dragging in -- or cycling through -- the whole tool-flow stack.
from repro.core.serde import (
    ReproDeprecationWarning, SerdeError, canonical_json, json_roundtrip,
    serde, serde_tag,
    dump as serde_dump, dumps as serde_dumps,
    load as serde_load, loads as serde_loads,
)

_LAZY = {
    "Application": ("repro.core.application", "Application"),
    "ApplicationKind": ("repro.core.application", "ApplicationKind"),
    "PlatformDescription": ("repro.core.platform", "PlatformDescription"),
    "DesignFlow": ("repro.core.flow", "DesignFlow"),
    "UnifiedReport": ("repro.core.flow", "UnifiedReport"),
    "geometric_mean": ("repro.core.metrics", "geometric_mean"),
    "speedup_curve": ("repro.core.metrics", "speedup_curve"),
    "summarize_speedups": ("repro.core.metrics", "summarize_speedups"),
}


def __getattr__(name):
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module 'repro.core' has no attribute {name!r}")
    from importlib import import_module
    value = getattr(import_module(module_name), attr)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(_LAZY))


__all__ = [
    "Application", "ApplicationKind", "DesignFlow", "PlatformDescription",
    "ReproDeprecationWarning", "SerdeError", "UnifiedReport",
    "canonical_json", "geometric_mean", "json_roundtrip", "serde",
    "serde_dump", "serde_dumps", "serde_load", "serde_loads", "serde_tag",
    "speedup_curve", "summarize_speedups",
]
