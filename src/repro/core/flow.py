"""The unified design flow: one entry point, the right tool per app kind."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.core.application import Application, ApplicationKind
from repro.core.platform import PlatformDescription
from repro.hopes.translator import CICTranslator, GeneratedTarget
from repro.maps.flow import FlowReport, MapsFlow
from repro.rt.data_driven import DataDrivenResult, run_data_driven
from repro.rt.time_triggered import TimeTriggeredResult, run_time_triggered


@dataclass
class UnifiedReport:
    """What the unified flow produced (fields filled per app kind)."""

    app_name: str
    kind: ApplicationKind
    maps_report: Optional[FlowReport] = None
    hopes_target: Optional[GeneratedTarget] = None
    hopes_execution: Optional[Any] = None
    stream_data_driven: Optional[DataDrivenResult] = None
    stream_time_triggered: Optional[TimeTriggeredResult] = None

    @property
    def ok(self) -> bool:
        if self.kind == ApplicationKind.SEQUENTIAL_C:
            return bool(self.maps_report and
                        self.maps_report.semantics_preserved)
        if self.kind == ApplicationKind.CIC:
            return self.hopes_execution is not None
        return self.stream_data_driven is not None


class DesignFlow:
    """Route applications through the MAPS / HOPES / RT flows."""

    def __init__(self, platform: PlatformDescription) -> None:
        self.platform = platform

    def run(self, app: Application, iterations: int = 16,
            split_k: Optional[int] = None) -> UnifiedReport:
        """Process one application end to end on this platform."""
        app.validate()
        report = UnifiedReport(app.name, app.kind)
        if app.kind == ApplicationKind.SEQUENTIAL_C:
            flow = MapsFlow(self.platform.as_maps_platform())
            report.maps_report = flow.run(app.program, entry=app.entry,
                                          split_k=split_k,
                                          app_name=app.name)
        elif app.kind == ApplicationKind.CIC:
            translator = CICTranslator(app.cic, self.platform.as_arch_info())
            generated = translator.translate()
            report.hopes_target = generated
            report.hopes_execution = generated.run(iterations)
        elif app.kind == ApplicationKind.STREAM:
            report.stream_data_driven = run_data_driven(app.pipeline,
                                                        jobs=iterations)
            try:
                report.stream_time_triggered = run_time_triggered(
                    app.pipeline, jobs=iterations)
            except ValueError:
                report.stream_time_triggered = None  # infeasible TT schedule
        return report


__all__ = ["DesignFlow", "UnifiedReport"]
