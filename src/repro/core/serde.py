"""The one serialization protocol of the reproduction.

Every subsystem that ships structured objects across a process boundary
-- farm cache entries, campaign manifests, executor-backend wire frames,
fault plans inside job configs, snapshots inside warm-job configs --
historically grew its own ad-hoc ``to_dict``/``from_dict`` pair.  This
module promotes those pairs into a single *versioned* codec so every
payload speaks the same bytes:

- :func:`canonical_json` / :func:`json_roundtrip` -- the canonical byte
  form (sorted keys, tight separators, NaN rejected) that cache keys,
  aggregates and wire frames are built on;
- :func:`serde` -- class decorator registering a ``to_dict``/``from_dict``
  pair under a stable *tag* and integer *version*;
- :func:`dump` / :func:`load` -- envelope codec:
  ``{"$serde": tag, "$version": n, "data": obj.to_dict()}`` round-trips
  through any JSON channel back to the object, with a hard version check
  (or the class's own ``serde_upgrade`` migration hook);
- :func:`dumps` / :func:`loads` -- the same, as canonical JSON text.

Registration is *lazy-loadable*: the registry maps each tag to the
class's durable ``module:qualname`` reference, so a fresh worker process
can decode an envelope without the defining module pre-imported.

Also home to :class:`ReproDeprecationWarning`, the category every
deprecated repo entrypoint warns with -- tier-1 CI promotes exactly this
category to an error, so internal code can never quietly keep calling a
legacy surface.
"""

from __future__ import annotations

import json
from importlib import import_module
from typing import Any, Callable, Dict, Optional, Tuple, Type

SERDE_KEY = "$serde"
VERSION_KEY = "$version"
DATA_KEY = "data"


class ReproDeprecationWarning(DeprecationWarning):
    """Deprecation category for legacy repo entrypoints.

    Kept distinct from the stdlib category so the test suite can promote
    *our* deprecations to errors (catching internal use of legacy
    surfaces) without exploding on unrelated library warnings.
    """


class SerdeError(ValueError):
    """A payload that cannot be encoded or decoded by the codec."""


def canonical_json(value: Any) -> str:
    """Serialize ``value`` to the repo's canonical JSON form.

    Equal values always yield equal bytes (sorted keys, no whitespace,
    ASCII only); non-finite floats are rejected rather than silently
    emitted as invalid JSON.  This is the byte-identity foundation:
    cache keys, failure records, campaign aggregates and backend wire
    frames all pass through here.
    """
    return json.dumps(value, sort_keys=True, separators=(",", ":"),
                      allow_nan=False, ensure_ascii=True)


def json_roundtrip(value: Any) -> Any:
    """Normalize a value to pure JSON types (tuples become lists, dict
    keys become strings), so a freshly computed result and its
    rehydrated twin are indistinguishable."""
    return json.loads(canonical_json(value))


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------

# tag -> (version, "module:qualname").  The reference is resolved lazily
# so decoding an envelope never requires its class pre-imported, and the
# table below seeds the tags shipped by the repo itself (a class
# decorated with @serde re-registers itself identically on import).
_REGISTRY: Dict[str, Tuple[int, str]] = {
    "fault-plan": (1, "repro.faults.plan:FaultPlan"),
    "task-graph": (1, "repro.maps.taskgraph:TaskGraph"),
    "platform-spec": (1, "repro.maps.spec:PlatformSpec"),
    "execution-report": (1, "repro.hopes.runtime:ExecutionReport"),
    "snapshot": (1, "repro.snap.core:Snapshot"),
    "bias-knobs": (1, "repro.gen.firmware:BiasKnobs"),
    "manycore-config": (1, "repro.manycore.machine:ManyCoreConfig"),
}

_RESOLVED: Dict[str, Type[Any]] = {}


def serde(tag: str, version: int = 1) -> Callable[[Type[Any]], Type[Any]]:
    """Class decorator: register ``cls`` under ``tag`` at ``version``.

    The class must provide the classic pair -- ``to_dict(self) -> dict``
    and ``from_dict(cls, data) -> cls`` -- which the envelope codec
    wraps.  Re-registering the same tag with a different class or
    version is an error (tags are wire-stable names, not conveniences).
    """
    if not tag or not isinstance(tag, str):
        raise SerdeError(f"serde tag must be a non-empty string, got {tag!r}")
    if not isinstance(version, int) or version < 1:
        raise SerdeError(f"serde version must be an int >= 1, got {version!r}")

    def register(cls: Type[Any]) -> Type[Any]:
        if not callable(getattr(cls, "to_dict", None)) or \
                not callable(getattr(cls, "from_dict", None)):
            raise SerdeError(
                f"@serde({tag!r}) class {cls.__name__} must define "
                f"to_dict/from_dict")
        ref = f"{cls.__module__}:{cls.__qualname__}"
        known = _REGISTRY.get(tag)
        if known is not None and known != (version, ref):
            raise SerdeError(
                f"serde tag {tag!r} already registered as {known}, "
                f"cannot rebind to ({version}, {ref!r})")
        _REGISTRY[tag] = (version, ref)
        _RESOLVED[tag] = cls
        cls.__serde_tag__ = tag
        cls.__serde_version__ = version
        return cls

    return register


def serde_tag(obj: Any) -> str:
    """The registered tag of an object (or class); SerdeError if none."""
    tag = getattr(obj, "__serde_tag__", None)
    if tag is None:
        kind = obj if isinstance(obj, type) else type(obj)
        raise SerdeError(f"{kind.__name__} is not @serde-registered")
    return tag


def _resolve(tag: str) -> Type[Any]:
    cls = _RESOLVED.get(tag)
    if cls is not None:
        return cls
    entry = _REGISTRY.get(tag)
    if entry is None:
        raise SerdeError(f"unknown serde tag {tag!r} "
                         f"(known: {sorted(_REGISTRY)})")
    _version, ref = entry
    module_name, _, qualname = ref.partition(":")
    obj: Any = import_module(module_name)
    for part in qualname.split("."):
        obj = getattr(obj, part)
    _RESOLVED[tag] = obj
    return obj


# ---------------------------------------------------------------------------
# envelope codec
# ---------------------------------------------------------------------------

def dump(obj: Any) -> Dict[str, Any]:
    """Encode a registered object into its versioned JSON envelope."""
    tag = serde_tag(obj)
    version, _ref = _REGISTRY[tag]
    data = obj.to_dict()
    if not isinstance(data, dict):
        raise SerdeError(f"{type(obj).__name__}.to_dict() must return a "
                         f"dict, got {type(data).__name__}")
    return {SERDE_KEY: tag, VERSION_KEY: version, DATA_KEY: data}


def load(payload: Dict[str, Any]) -> Any:
    """Decode an envelope back into its object.

    The payload version must match the registered version; classes that
    define ``serde_upgrade(data, version) -> data`` (classmethod) get a
    chance to migrate older payloads, otherwise a mismatch is a hard
    :class:`SerdeError` -- wire payloads and cache entries must never be
    silently reinterpreted across schema changes.
    """
    if not isinstance(payload, dict) or SERDE_KEY not in payload:
        raise SerdeError(f"not a serde envelope: {payload!r}")
    tag = payload[SERDE_KEY]
    cls = _resolve(tag)
    version, _ref = _REGISTRY[tag]
    got = payload.get(VERSION_KEY)
    data = payload.get(DATA_KEY)
    if not isinstance(data, dict):
        raise SerdeError(f"serde envelope {tag!r} carries no data dict")
    if got != version:
        upgrade = getattr(cls, "serde_upgrade", None)
        if upgrade is None:
            raise SerdeError(
                f"serde tag {tag!r}: payload version {got!r} != "
                f"registered version {version} and "
                f"{cls.__name__} defines no serde_upgrade hook")
        data = upgrade(data, got)
    return cls.from_dict(data)


def dumps(obj: Any) -> str:
    """Encode a registered object as canonical JSON text."""
    return canonical_json(dump(obj))


def loads(text: str) -> Any:
    """Decode canonical JSON text produced by :func:`dumps`."""
    try:
        payload = json.loads(text)
    except ValueError as error:
        raise SerdeError(f"invalid serde JSON: {error}") from None
    return load(payload)


def is_envelope(payload: Any) -> bool:
    """True when ``payload`` looks like a serde envelope."""
    return isinstance(payload, dict) and SERDE_KEY in payload


__all__ = [
    "DATA_KEY", "ReproDeprecationWarning", "SERDE_KEY", "SerdeError",
    "VERSION_KEY", "canonical_json", "dump", "dumps", "is_envelope",
    "json_roundtrip", "load", "loads", "serde", "serde_tag",
]
