"""Common measurement helpers used by benches and EXPERIMENTS.md."""

from __future__ import annotations

import math
from typing import Dict, Iterable, Sequence


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean (the right average for speedup ratios)."""
    values = [v for v in values]
    if not values:
        raise ValueError("no values")
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean needs positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def speedup_curve(baseline: float,
                  measurements: Dict[int, float]) -> Dict[int, float]:
    """Turn {n_cores: time} into {n_cores: speedup-vs-baseline}."""
    if baseline <= 0:
        raise ValueError("baseline time must be positive")
    return {n: baseline / t if t > 0 else float("inf")
            for n, t in sorted(measurements.items())}


def summarize_speedups(curve: Dict[int, float]) -> Dict[str, float]:
    """Headline numbers for a scaling curve."""
    if not curve:
        raise ValueError("empty curve")
    ns = sorted(curve)
    peak_n = max(curve, key=lambda n: curve[n])
    return {
        "max_cores": float(ns[-1]),
        "speedup_at_max": curve[ns[-1]],
        "peak_speedup": curve[peak_n],
        "parallel_efficiency_at_max": curve[ns[-1]] / ns[-1],
    }


def crossover_point(curve_a: Dict[float, float],
                    curve_b: Dict[float, float]) -> float:
    """First x where curve_a stops beating curve_b (inf if it never
    stops), i.e. the first shared x with ``curve_a[x] <= curve_b[x]``.
    Both curves must share their x keys."""
    shared = sorted(set(curve_a) & set(curve_b))
    if not shared:
        raise ValueError("curves share no x values")
    for x in shared:
        if curve_a[x] <= curve_b[x]:
            return x
    return float("inf")


def table(rows: Sequence[Sequence], headers: Sequence[str]) -> str:
    """Render an aligned text table (what the bench harness prints)."""
    rendered = [[str(cell) for cell in row] for row in rows]
    widths = [max(len(headers[i]),
                  max((len(r[i]) for r in rendered), default=0))
              for i in range(len(headers))]
    lines = ["  ".join(h.ljust(w) for h, w in zip(headers, widths))]
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


__all__ = ["crossover_point", "geometric_mean", "speedup_curve",
           "summarize_speedups", "table"]
