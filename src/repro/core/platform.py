"""One platform description, many projections.

The subsystems grew their own platform models (as the paper's tools did);
:class:`PlatformDescription` is the single source of truth a user writes,
projectable into each model:

- :meth:`as_maps_platform` -- the MAPS coarse architecture model;
- :meth:`as_machine` -- the section-II many-core machine;
- :meth:`as_arch_info` / :meth:`as_arch_xml` -- the HOPES architecture
  file;
- :meth:`as_soc_config` -- the virtual-platform build config.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.hopes.archfile import ArchInfo, InterconnectInfo, ProcessorInfo, to_arch_xml
from repro.manycore.machine import Machine
from repro.maps.spec import PEClass, PlatformSpec
from repro.vp.soc import SoCConfig


@dataclass
class ProcessorDescription:
    """One processor in the unified description."""

    name: str
    pe_class: str = "risc"          # risc | dsp | vliw | accelerator
    freq: float = 1.0
    local_store: Optional[int] = None
    isa: str = "isa0"


@dataclass
class PlatformDescription:
    """Target platform, tool-agnostic."""

    name: str = "platform"
    processors: List[ProcessorDescription] = field(default_factory=list)
    shared_memory: bool = True
    comm_setup: float = 10.0
    comm_per_word: float = 0.5
    power_budget: Optional[float] = None

    def add_processor(self, name: str, pe_class: str = "risc",
                      freq: float = 1.0, local_store: Optional[int] = None,
                      isa: str = "isa0") -> ProcessorDescription:
        if any(p.name == name for p in self.processors):
            raise ValueError(f"duplicate processor {name!r}")
        proc = ProcessorDescription(name, pe_class, freq, local_store, isa)
        self.processors.append(proc)
        return proc

    @classmethod
    def symmetric(cls, n: int, pe_class: str = "risc", **kwargs) \
            -> "PlatformDescription":
        description = cls(name=f"smp{n}", **kwargs)
        for index in range(n):
            description.add_processor(f"pe{index}", pe_class)
        return description

    # -- projections -------------------------------------------------------
    def as_maps_platform(self) -> PlatformSpec:
        platform = PlatformSpec(name=self.name,
                                channel_setup_cost=self.comm_setup,
                                channel_word_cost=self.comm_per_word)
        for proc in self.processors:
            platform.add_pe(proc.name, PEClass(proc.pe_class), proc.freq)
        return platform

    def as_machine(self) -> Machine:
        machine = Machine(len(self.processors),
                          power_budget=self.power_budget)
        for core, proc in zip(machine.cores, self.processors):
            core.freq = proc.freq
            core.isa = proc.isa
        return machine

    def as_arch_info(self) -> ArchInfo:
        model = "shared" if self.shared_memory else "distributed"
        info = ArchInfo(name=self.name, model=model,
                        interconnect=InterconnectInfo(
                            kind="bus" if self.shared_memory else "dma",
                            setup=self.comm_setup,
                            per_word=self.comm_per_word))
        for proc in self.processors:
            proc_type = ("accel" if proc.local_store is not None
                         else ("smp" if self.shared_memory else "host"))
            info.processors.append(ProcessorInfo(
                proc.name, proc_type, proc.freq, proc.local_store))
        return info

    def as_arch_xml(self) -> str:
        return to_arch_xml(self.as_arch_info())

    def as_soc_config(self, ram_words: int = 4096) -> SoCConfig:
        return SoCConfig(n_cores=len(self.processors), ram_words=ram_words)

    @property
    def n_processors(self) -> int:
        return len(self.processors)


__all__ = ["PlatformDescription", "ProcessorDescription"]
