"""Data-restructuring transformations: shared-access analysis, vector
splitting, localization, and channel insertion (section VI).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from repro.cir.analysis.dataflow import stmt_defs, stmt_uses
from repro.cir.analysis.dependence import _extract_counted_header
from repro.cir.clone import clone
from repro.cir.codegen import emit_expression
from repro.cir.nodes import (
    ArrayIndex, Assign, BinOp, Block, Call, Decl, ExprStmt, For,
    FuncDef, Ident, IntLit, Program, Stmt,
)
from repro.cir.typesys import ArrayType, INT, ScalarType
from repro.recoder.transforms.base import (
    TransformError, TransformReport, find_loop, top_level_index,
)


# ---------------------------------------------------------------------------
# shared-data access analysis
# ---------------------------------------------------------------------------

@dataclass
class SharedAccessReport:
    """Which names are shared between which top-level statements."""

    shared: Dict[str, List[int]] = field(default_factory=dict)
    # name -> (writer statement lines, reader statement lines)
    writers: Dict[str, List[int]] = field(default_factory=dict)
    readers: Dict[str, List[int]] = field(default_factory=dict)

    def is_shared(self, name: str) -> bool:
        return len(self.shared.get(name, [])) > 1


def analyze_shared_accesses(program: Program,
                            func_name: str) -> SharedAccessReport:
    """"analyze shared data accesses": which variables couple the
    top-level statements (= candidate partitions) of a function."""
    func = program.function(func_name)
    report = SharedAccessReport()
    for stmt in func.body.stmts:
        defs: Set[str] = set()
        uses: Set[str] = set()
        for node in stmt.walk():
            if isinstance(node, Stmt):
                defs |= stmt_defs(node)
                uses |= stmt_uses(node)
        for name in defs:
            report.writers.setdefault(name, []).append(stmt.line)
        for name in uses:
            report.readers.setdefault(name, []).append(stmt.line)
        for name in defs | uses:
            lines = report.shared.setdefault(name, [])
            if stmt.line not in lines:
                lines.append(stmt.line)
    report.shared = {name: lines for name, lines in report.shared.items()
                     if len(lines) > 1}
    return report


# ---------------------------------------------------------------------------
# vector splitting
# ---------------------------------------------------------------------------

def _resolve_loops(func: FuncDef, selectors: List) -> List[For]:
    """Resolve loop selectors (source lines or For nodes) to loops.

    Repeated lines select successive loops at that line -- loop-split
    pieces share their ancestor's source line until the document is
    regenerated."""
    from collections import deque
    by_line: Dict[int, deque] = {}
    for node in func.body.walk():
        if isinstance(node, For):
            by_line.setdefault(node.line, deque()).append(node)
    loops: List[For] = []
    for selector in selectors:
        if isinstance(selector, For):
            loops.append(selector)
            continue
        queue = by_line.get(selector)
        if not queue:
            raise TransformError(f"no (further) for-loop at line {selector}")
        loops.append(queue.popleft())
    return loops


def split_shared_vector(program: Program, func_name: str, array: str,
                        loop_lines: List[int],
                        copy_back: bool = True) -> TransformReport:
    """"split vectors of shared data": privatize ``array`` per partition.

    Each loop in ``loop_lines`` must be a counted step-1 loop with literal
    bounds accessing ``array`` only at index expressions equal to the loop
    variable.  The transformation declares one private sub-array per
    partition, rewrites indices to partition-local offsets, and (with
    ``copy_back``) gathers the pieces back so downstream readers are
    unaffected -- making the transformation unconditionally
    semantics-preserving."""
    func = program.function(func_name)
    element = _array_element_type(program, func, array)
    loops = _resolve_loops(func, loop_lines)
    ranges: List[Tuple[int, int]] = []
    for loop in loops:
        header = _extract_counted_header(loop)
        if header is None or header[3] != 1:
            raise TransformError("vector split needs counted step-1 loops")
        var, lower, upper, _step = header
        if not isinstance(lower, IntLit) or not isinstance(upper, IntLit):
            raise TransformError("vector split needs literal bounds")
        _check_only_loop_var_indexing(loop, array, var)
        ranges.append((lower.value, upper.value))

    # Which partitions read / write the array (decides copy-in/gather).
    modes: List[Tuple[bool, bool]] = []
    for loop in loops:
        reads = writes = False
        for node in loop.body.walk():
            if isinstance(node, ArrayIndex):
                root = node.root_ident()
                if root is not None and root.name == array:
                    if _is_store_target(loop.body, node):
                        writes = True
                    else:
                        reads = True
            if isinstance(node, Assign) and node.op and \
                    isinstance(node.target, ArrayIndex):
                root = node.target.root_ident()
                if root is not None and root.name == array:
                    reads = True  # compound assignment reads the target
        modes.append((reads, writes))

    decls: List[Stmt] = []
    copy_ins: List[Stmt] = []
    changed = 0
    for index, (loop, (low, high)) in enumerate(zip(loops, ranges)):
        private = f"{array}__{index}"
        size = max(1, high - low)
        decls.append(Decl(type=ArrayType(element, (size,)), name=private))
        reads, _writes = modes[index]
        if reads:
            copy_ins.extend(_copy_loop(f"__s{index}_{array}", array,
                                       private, low, high, into_private=True))
        var = _extract_counted_header(loop)[0]
        changed += _rewrite_array_accesses(loop, array, private, low, var)

    first_index = func.body.stmts.index(loops[0])
    func.body.stmts[first_index:first_index] = decls + copy_ins

    if copy_back and any(writes for _reads, writes in modes):
        gather: List[Stmt] = []
        for index, ((low, high), (_reads, writes)) in enumerate(
                zip(ranges, modes)):
            if not writes:
                continue
            private = f"{array}__{index}"
            gather.extend(_copy_loop(f"__g{index}_{array}", array, private,
                                     low, high, into_private=False))
        last_loop_index = func.body.stmts.index(loops[-1])
        func.body.stmts[last_loop_index + 1:last_loop_index + 1] = gather

    return TransformReport(
        "split_shared_vector",
        f"array {array!r} split into {len(loops)} private vectors"
        + (" with gather-back" if copy_back else ""),
        nodes_changed=changed)


def _copy_loop(counter: str, array: str, private: str, low: int, high: int,
               into_private: bool) -> List[Stmt]:
    """``for (c = low; c < high; c++) dst[...] = src[...];``"""
    shared = ArrayIndex(base=Ident(name=array), index=Ident(name=counter))
    local = ArrayIndex(base=Ident(name=private),
                       index=BinOp(op="-", left=Ident(name=counter),
                                   right=IntLit(value=low)))
    target, value = (local, shared) if into_private else (shared, local)
    body = Block(stmts=[Assign(target=target, value=value)])
    return [
        Decl(type=INT, name=counter),
        For(init=Assign(target=Ident(name=counter), value=IntLit(value=low)),
            test=BinOp(op="<", left=Ident(name=counter),
                       right=IntLit(value=high)),
            step=Assign(target=Ident(name=counter), value=IntLit(value=1),
                        op="+"),
            body=body),
    ]


def _array_element_type(program: Program, func: FuncDef,
                        array: str) -> ScalarType:
    for decl in program.globals:
        if decl.name == array and isinstance(decl.type, ArrayType):
            return decl.type.element
    for node in func.body.walk():
        if isinstance(node, Decl) and node.name == array and \
                isinstance(node.type, ArrayType):
            return node.type.element
    raise TransformError(f"{array!r} is not a declared array")


def _check_only_loop_var_indexing(loop: For, array: str, var: str) -> None:
    for node in loop.body.walk():
        if isinstance(node, ArrayIndex):
            root = node.root_ident()
            if root is not None and root.name == array:
                index = node.index
                if not (isinstance(index, Ident) and index.name == var):
                    raise TransformError(
                        f"access {array}[{emit_expression(index)}] is not "
                        f"indexed by the loop variable {var!r}")


def _rewrite_array_accesses(loop: For, array: str, private: str,
                            low: int, var: str) -> int:
    changed = 0
    for node in loop.body.walk():
        if isinstance(node, ArrayIndex):
            root = node.root_ident()
            if root is not None and root.name == array:
                root.name = private
                if low != 0:
                    node.index = BinOp(op="-", left=node.index,
                                       right=IntLit(value=low))
                changed += 1
    return changed


# ---------------------------------------------------------------------------
# localization (scalarization of repeated array reads)
# ---------------------------------------------------------------------------

def localize_accesses(program: Program, func_name: str,
                      line: int) -> TransformReport:
    """"localize variable accesses": hoist repeated reads of the same
    array element in a loop body into a local temporary.

    Applicable when the array is not written anywhere in the loop body
    (otherwise a read after the write would see a stale local)."""
    func = program.function(func_name)
    loop = find_loop(func, line)
    written: Set[str] = set()
    for node in loop.body.walk():
        if isinstance(node, (Assign, Decl)):
            written |= stmt_defs(node)

    # Count reads per (array, rendered index) pair.
    reads: Dict[Tuple[str, str], List[ArrayIndex]] = {}
    for stmt in loop.body.stmts:
        for node in stmt.walk():
            if isinstance(node, ArrayIndex):
                root = node.root_ident()
                if root is None or root.name in written:
                    continue
                if _is_store_target(loop.body, node):
                    continue
                key = (root.name, emit_expression(node))
                reads.setdefault(key, []).append(node)

    hoisted = 0
    new_decls: List[Stmt] = []
    replacements: Dict[int, str] = {}
    for (array, rendered), nodes in sorted(reads.items()):
        if len(nodes) < 2:
            continue
        temp = f"__loc{hoisted}_{array}"
        element = _array_element_type(program, func, array)
        new_decls.append(Decl(type=element, name=temp,
                              init=clone(nodes[0])))
        for node in nodes:
            replacements[node.node_id] = temp
        hoisted += 1
    if not hoisted:
        return TransformReport("localize_accesses",
                               "nothing to localize", nodes_changed=0)
    _replace_nodes(loop.body, replacements)
    loop.body.stmts[0:0] = new_decls
    return TransformReport(
        "localize_accesses",
        f"hoisted {hoisted} repeated array reads into locals",
        nodes_changed=len(replacements))


def _is_store_target(block: Block, node: ArrayIndex) -> bool:
    for child in block.walk():
        if isinstance(child, Assign) and child.target is node:
            return True
    return False


def _replace_nodes(block: Block, replacements: Dict[int, str]) -> None:
    """Replace ArrayIndex nodes (by id) with Ident temps, in place."""
    import dataclasses

    def rewrite(node):
        for field_info in dataclasses.fields(node):
            value = getattr(node, field_info.name)
            if isinstance(value, list):
                for i, item in enumerate(value):
                    if hasattr(item, "node_id") and \
                            item.node_id in replacements:
                        value[i] = Ident(name=replacements[item.node_id])
                    elif hasattr(item, "walk"):
                        rewrite(item)
            elif hasattr(value, "node_id") and \
                    value.node_id in replacements:
                setattr(node, field_info.name,
                        Ident(name=replacements[value.node_id]))
            elif hasattr(value, "walk"):
                rewrite(value)

    rewrite(block)


# ---------------------------------------------------------------------------
# channel insertion
# ---------------------------------------------------------------------------

def insert_channel_sync(program: Program, func_name: str, var: str,
                        producer_line: int, consumer_line: int,
                        channel_id: int = 0) -> TransformReport:
    """"synchronize accesses to shared data by inserting communication
    channels": the scalar ``var`` flowing from the producer statement to
    the consumer statement is routed through channel ``channel_id``.

    After the transformation the producer partition ends with
    ``ch_write(id, var)`` and the consumer partition begins with
    ``var = ch_read(id)`` -- the code shape a partitioning flow needs
    before the two sides can live on different cores.  With FIFO channel
    semantics this is semantics-preserving for single-writer scalars."""
    func = program.function(func_name)
    producer_index = top_level_index(func, producer_line)
    consumer_index = top_level_index(func, consumer_line)
    if producer_index >= consumer_index:
        raise TransformError("producer must precede consumer")
    producer = func.body.stmts[producer_index]
    prod_defs: Set[str] = set()
    for node in producer.walk():
        if isinstance(node, (Assign, Decl)):
            prod_defs |= stmt_defs(node)
    if var not in prod_defs:
        raise TransformError(
            f"{var!r} is not defined by the statement at line "
            f"{producer_line}")

    send = ExprStmt(expr=Call(name="ch_write",
                              args=[IntLit(value=channel_id),
                                    Ident(name=var)]))
    receive = Assign(target=Ident(name=var),
                     value=Call(name="ch_read",
                                args=[IntLit(value=channel_id)]))
    func.body.stmts.insert(consumer_index, receive)
    func.body.stmts.insert(producer_index + 1, send)
    return TransformReport(
        "insert_channel_sync",
        f"{var!r} now flows through channel {channel_id} from line "
        f"{producer_line} to line {consumer_line}",
        nodes_changed=2)


def insert_array_channel_sync(program: Program, func_name: str, array: str,
                              producer_line: int, consumer_line: int,
                              channel_id: int = 0) -> TransformReport:
    """Route a whole array through a channel between two partitions.

    This is the array-flavoured counterpart of
    :func:`insert_channel_sync`, completing the paper's "expose pipelined
    parallelism" chain: after loop fission distributes a loop into a
    producer and a consumer loop over a shared array, this transformation
    decouples them -- the producer ends with ``ch_send_arr(id, A)`` and
    the consumer begins with ``ch_recv_arr(id, A)``, after which the two
    loops can live on different cores with a FIFO between them.

    The runtime primitives have copy semantics (send snapshots the array,
    receive overwrites it), so with FIFO externals the transformation is
    semantics-preserving for single-producer arrays."""
    func = program.function(func_name)
    producer_index = top_level_index(func, producer_line)
    consumer_index = top_level_index(func, consumer_line)
    if producer_index >= consumer_index:
        raise TransformError("producer must precede consumer")
    _array_element_type(program, func, array)  # validates it is an array
    producer = func.body.stmts[producer_index]
    prod_defs: Set[str] = set()
    for node in producer.walk():
        if isinstance(node, (Assign, Decl)):
            prod_defs |= stmt_defs(node)
    if array not in prod_defs:
        raise TransformError(
            f"{array!r} is not written by the statement at line "
            f"{producer_line}")
    send = ExprStmt(expr=Call(name="ch_send_arr",
                              args=[IntLit(value=channel_id),
                                    Ident(name=array)]))
    receive = ExprStmt(expr=Call(name="ch_recv_arr",
                                 args=[IntLit(value=channel_id),
                                       Ident(name=array)]))
    func.body.stmts.insert(consumer_index, receive)
    func.body.stmts.insert(producer_index + 1, send)
    return TransformReport(
        "insert_array_channel_sync",
        f"array {array!r} now flows through channel {channel_id} from "
        f"line {producer_line} to line {consumer_line}",
        nodes_changed=2)


def make_array_channel_externals() -> Dict[str, object]:
    """Interpreter externals implementing the array-channel runtime.

    ``ch_send_arr(id, A)`` snapshots A's storage into FIFO ``id``;
    ``ch_recv_arr(id, A)`` pops a snapshot and overwrites A in place.
    """
    queues: Dict[int, List[List[int]]] = {}

    def ch_send_arr(channel_id, array_value):
        queues.setdefault(int(channel_id), []).append(
            list(array_value.storage))
        return 0

    def ch_recv_arr(channel_id, array_value):
        snapshot = queues[int(channel_id)].pop(0)
        array_value.storage[:] = snapshot
        return 0

    return {"ch_send_arr": ch_send_arr, "ch_recv_arr": ch_recv_arr}


__all__ = ["SharedAccessReport", "analyze_shared_accesses",
           "insert_array_channel_sync", "insert_channel_sync",
           "localize_accesses", "make_array_channel_externals",
           "split_shared_vector"]
