"""Loop partitioning transformations: chunk split and fission.

- :func:`split_loop` -- "split loops into code partitions": one counted
  loop becomes ``k`` consecutive sub-range loops.  Because the chunks
  execute in original iteration order, this is semantics-preserving for
  *any* counted step-1 loop (even sequential ones); the partitions become
  units for mapping to cores.
- :func:`split_loop_fission` -- "expose pipelined parallelism": the loop
  body is distributed over two loops at a statement boundary (classic
  loop distribution).  Legal when no value flows backward across the cut;
  the analysis result is reported as warnings for the designer to concur
  with or overrule.
"""

from __future__ import annotations

from typing import List

from repro.cir.analysis.dataflow import stmt_defs, stmt_uses
from repro.cir.analysis.dependence import (
    _extract_counted_header, )
from repro.cir.clone import clone, clone_list
from repro.cir.nodes import (
    Assign, BinOp, Block, For, Ident, IntLit, Program, Stmt,
)
from repro.recoder.transforms.base import (
    TransformError, TransformReport, find_enclosing_block, find_loop,
)


def split_loop(program: Program, func_name: str, line: int,
               k: int) -> TransformReport:
    """Split the counted loop at ``line`` into ``k`` sub-range loops."""
    if k < 2:
        raise TransformError("k must be >= 2")
    func = program.function(func_name)
    loop = find_loop(func, line)
    header = _extract_counted_header(loop)
    if header is None:
        raise TransformError(f"loop at line {line} is not a counted loop")
    var, lower, upper, step = header
    if step != 1:
        raise TransformError("only step-1 loops can be chunk-split")
    if not isinstance(lower, IntLit) or not isinstance(upper, IntLit):
        raise TransformError("chunk split needs literal loop bounds")

    low, high = lower.value, upper.value
    span = max(0, high - low)
    base = span // k
    remainder = span % k
    pieces: List[For] = []
    cursor = low
    for index in range(k):
        size = base + (1 if index < remainder else 0)
        piece = clone(loop)
        piece.init = Assign(target=Ident(name=var),
                            value=IntLit(value=cursor))
        piece.test = BinOp(op="<", left=Ident(name=var),
                           right=IntLit(value=cursor + size))
        piece.step = Assign(target=Ident(name=var), value=IntLit(value=1),
                            op="+")
        pieces.append(piece)
        cursor += size

    block = find_enclosing_block(func, loop)
    position = block.stmts.index(loop)
    block.stmts[position:position + 1] = pieces
    return TransformReport(
        "split_loop",
        f"loop at line {line} split into {k} partitions of "
        f"~{base} iterations",
        nodes_changed=k)


def split_loop_fission(program: Program, func_name: str, line: int,
                       cut: int) -> TransformReport:
    """Distribute the loop at ``line`` into two loops at body index ``cut``.

    The first loop runs body statements ``[0, cut)`` for all iterations,
    then the second runs ``[cut, ...)`` for all iterations.  Warnings are
    produced when a value may flow from the second group back into the
    first across iterations (designer decides)."""
    func = program.function(func_name)
    loop = find_loop(func, line)
    if not 0 < cut < len(loop.body.stmts):
        raise TransformError(
            f"cut {cut} out of range for a body of "
            f"{len(loop.body.stmts)} statements")
    first_stmts = loop.body.stmts[:cut]
    second_stmts = loop.body.stmts[cut:]

    warnings: List[str] = []
    # Backward flow check: second group defines something first group uses.
    first_uses = set()
    first_defs = set()
    for stmt in first_stmts:
        for node in stmt.walk():
            if isinstance(node, Stmt):
                first_uses |= stmt_uses(node)
                first_defs |= stmt_defs(node)
    second_defs = set()
    for stmt in second_stmts:
        for node in stmt.walk():
            if isinstance(node, Stmt):
                second_defs |= stmt_defs(node)
    header = _extract_counted_header(loop)
    loop_var = header[0] if header else None
    backward = (second_defs & first_uses) - {loop_var}
    if backward:
        warnings.append(
            f"possible backward flow across the cut via "
            f"{sorted(backward)}; fission changes semantics if the flow is "
            f"loop-carried")
    # Scalars defined in group 1 and used in group 2 must be arrays or
    # per-iteration temporaries; a scalar carried between the loops only
    # keeps its last-iteration value.
    carried_scalars = sorted((first_defs & _group_uses(second_stmts))
                             - {loop_var})
    if carried_scalars:
        warnings.append(
            f"values {carried_scalars} flow from group 1 to group 2; after "
            f"fission group 2 sees only the LAST iteration's value unless "
            f"they are arrays indexed by the loop variable")

    first = clone(loop)
    first.body = Block(stmts=clone_list(first_stmts))
    second = clone(loop)
    second.body = Block(stmts=clone_list(second_stmts))
    block = find_enclosing_block(func, loop)
    position = block.stmts.index(loop)
    block.stmts[position:position + 1] = [first, second]
    return TransformReport(
        "split_loop_fission",
        f"loop at line {line} distributed at body index {cut}",
        warnings=warnings, nodes_changed=2)


def _group_uses(stmts: List[Stmt]) -> set:
    uses = set()
    for stmt in stmts:
        for node in stmt.walk():
            if isinstance(node, Stmt):
                uses |= stmt_uses(node)
    return uses


__all__ = ["split_loop", "split_loop_fission"]
