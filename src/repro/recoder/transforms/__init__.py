"""Interactive source-level transformations (section VI).

"the designer uses her/his application knowledge and invokes re-coding
transformations to split loops into code partitions, analyze shared data
accesses, split vectors of shared data, localize variable accesses, and
finally synchronize accesses to shared data by inserting communication
channels. ... Additionally, code restructuring to prune the control
structure of the code and pointer recoding to replace pointer expressions
can be used to enhance the analyzability and synthesizability of the
models."

Every transformation:

- mutates the AST in place (the session clones for undo),
- returns a :class:`TransformReport` with warnings the designer may
  concur with or overrule (the recoder is designer-*controlled*, not an
  automatic compiler), and
- is semantics-preserving under its stated applicability conditions
  (verified by interpreter-differential tests).
"""

from repro.recoder.transforms.base import TransformError, TransformReport
from repro.recoder.transforms.loops import split_loop, split_loop_fission
from repro.recoder.transforms.data import (
    analyze_shared_accesses,
    insert_array_channel_sync,
    make_array_channel_externals,
    insert_channel_sync,
    localize_accesses,
    split_shared_vector,
)
from repro.recoder.transforms.cleanup import prune_control, recode_pointers

__all__ = [
    "TransformError", "TransformReport", "analyze_shared_accesses",
    "insert_array_channel_sync", "insert_channel_sync",
    "localize_accesses", "make_array_channel_externals", "prune_control",
    "recode_pointers", "split_loop", "split_loop_fission",
    "split_shared_vector",
]
