"""Analyzability transformations: pointer recoding and control pruning.

"code restructuring to prune the control structure of the code and pointer
recoding to replace pointer expressions can be used to enhance the
analyzability and synthesizability of the models" -- section VI.  The A4
ablation measures exactly this: loops that the dependence tester must
conservatively serialize while pointers are present become provably DOALL
after recoding.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from repro.cir.clone import clone
from repro.cir.nodes import (
    ArrayIndex, Assign, BinOp, Block, Cond, Decl, Expr, Ident, If, IntLit, Program, Stmt, UnaryOp, )
from repro.cir.typesys import PointerType
from repro.recoder.transforms.base import TransformError, TransformReport


# ---------------------------------------------------------------------------
# pointer recoding
# ---------------------------------------------------------------------------

def recode_pointers(program: Program, func_name: str) -> TransformReport:
    """Replace pointer expressions with explicit array accesses.

    Handles the single-assignment pattern ``int *p = &A[base];`` (or
    ``= A``): every ``*p``, ``*(p + e)``, ``p[e]`` becomes
    ``A[base (+ e)]`` and the pointer declaration is removed.  Pointers
    that are reassigned, or whose target cannot be identified, are left
    alone and reported as warnings."""
    func = program.function(func_name)
    bindings: Dict[str, Tuple[str, Optional[Expr]]] = {}
    removable: List[Tuple[Block, Decl]] = []
    warnings: List[str] = []

    for block in _blocks(func.body):
        for stmt in list(block.stmts):
            if isinstance(stmt, Decl) and isinstance(stmt.type, PointerType):
                target = _pointer_target(stmt.init)
                if target is None:
                    warnings.append(
                        f"pointer {stmt.name!r} at line {stmt.line} has an "
                        f"unanalyzable initializer; left unchanged")
                    continue
                if _is_reassigned(func.body, stmt.name):
                    warnings.append(
                        f"pointer {stmt.name!r} is reassigned; left "
                        f"unchanged")
                    continue
                bindings[stmt.name] = target
                removable.append((block, stmt))

    changed = 0
    if bindings:
        changed = _rewrite_pointer_uses(func.body, bindings)
        for block, decl in removable:
            if not _name_still_used(func.body, decl.name):
                block.stmts.remove(decl)
    return TransformReport(
        "recode_pointers",
        f"replaced {changed} pointer expressions "
        f"({len(bindings)} pointers recoded)",
        warnings=warnings, nodes_changed=changed)


def _blocks(block: Block):
    yield block
    for node in block.walk():
        if isinstance(node, Block) and node is not block:
            yield node


def _pointer_target(init: Optional[Expr]) -> Optional[Tuple[str, Optional[Expr]]]:
    """Decompose ``&A[base]`` / ``A`` into (array, base-or-None)."""
    if init is None:
        return None
    if isinstance(init, UnaryOp) and init.op == "&" and \
            isinstance(init.operand, ArrayIndex):
        root = init.operand.root_ident()
        if root is not None and isinstance(init.operand.base, Ident):
            return root.name, init.operand.index
        return None
    if isinstance(init, Ident):
        return init.name, None
    return None


def _is_reassigned(block: Block, name: str) -> bool:
    count = 0
    for node in block.walk():
        if isinstance(node, Assign) and isinstance(node.target, Ident) and \
                node.target.name == name:
            count += 1
    return count > 0


def _name_still_used(block: Block, name: str) -> bool:
    for node in block.walk():
        if isinstance(node, Ident) and node.name == name:
            return True
    return False


def _rewrite_pointer_uses(block: Block,
                          bindings: Dict[str, Tuple[str, Optional[Expr]]]) -> int:
    changed = [0]

    def to_array_access(pointer: str, offset: Optional[Expr]) -> ArrayIndex:
        array, base = bindings[pointer]
        if base is not None and offset is not None:
            index: Expr = BinOp(op="+", left=clone(base), right=offset)
        elif base is not None:
            index = clone(base)
        elif offset is not None:
            index = offset
        else:
            index = IntLit(value=0)
        changed[0] += 1
        return ArrayIndex(base=Ident(name=array), index=index)

    def rewrite_expr(expr: Expr) -> Expr:
        if isinstance(expr, UnaryOp) and expr.op == "*":
            inner = expr.operand
            if isinstance(inner, Ident) and inner.name in bindings:
                return to_array_access(inner.name, None)
            if isinstance(inner, BinOp) and inner.op in ("+", "-"):
                if isinstance(inner.left, Ident) and \
                        inner.left.name in bindings:
                    offset = rewrite_expr(inner.right)
                    if inner.op == "-":
                        offset = UnaryOp(op="-", operand=offset)
                    return to_array_access(inner.left.name, offset)
                if inner.op == "+" and isinstance(inner.right, Ident) and \
                        inner.right.name in bindings:
                    return to_array_access(inner.right.name,
                                           rewrite_expr(inner.left))
        if isinstance(expr, ArrayIndex):
            root = expr.base
            if isinstance(root, Ident) and root.name in bindings:
                return to_array_access(root.name, rewrite_expr(expr.index))
        # Generic recursion over expression fields.
        for field_info in dataclasses.fields(expr):
            value = getattr(expr, field_info.name)
            if isinstance(value, Expr):
                setattr(expr, field_info.name, rewrite_expr(value))
            elif isinstance(value, list):
                for i, item in enumerate(value):
                    if isinstance(item, Expr):
                        value[i] = rewrite_expr(item)
        return expr

    def rewrite_stmt(stmt: Stmt) -> None:
        for field_info in dataclasses.fields(stmt):
            value = getattr(stmt, field_info.name)
            if isinstance(value, Expr):
                setattr(stmt, field_info.name, rewrite_expr(value))
            elif isinstance(value, Block):
                for inner in value.stmts:
                    rewrite_stmt(inner)
            elif isinstance(value, Stmt):
                rewrite_stmt(value)
            elif isinstance(value, list):
                for item in value:
                    if isinstance(item, Stmt):
                        rewrite_stmt(item)

    for stmt in block.stmts:
        rewrite_stmt(stmt)
    return changed[0]


# ---------------------------------------------------------------------------
# control pruning
# ---------------------------------------------------------------------------

def prune_control(program: Program, func_name: str) -> TransformReport:
    """Prune the control structure: fold constant branches, flatten
    nested blocks, and convert two-sided scalar-assignment ifs into
    conditional assignments."""
    func = program.function(func_name)
    changed = [0]

    def prune_block(block: Block) -> None:
        new_stmts: List[Stmt] = []
        for stmt in block.stmts:
            for child in stmt.children():
                if isinstance(child, Block):
                    prune_block(child)
            replaced = _prune_stmt(stmt, changed)
            if isinstance(replaced, list):
                new_stmts.extend(replaced)
            else:
                new_stmts.append(replaced)
        block.stmts[:] = new_stmts

    prune_block(func.body)
    return TransformReport("prune_control",
                           f"{changed[0]} control constructs simplified",
                           nodes_changed=changed[0])


def _prune_stmt(stmt: Stmt, changed: List[int]):
    if isinstance(stmt, If):
        # Constant test: keep only the taken branch.
        if isinstance(stmt.test, IntLit):
            changed[0] += 1
            branch = stmt.then if stmt.test.value else stmt.other
            return list(branch.stmts) if branch is not None else []
        # Two-sided scalar assignment -> conditional assignment.
        if stmt.other is not None and len(stmt.then.stmts) == 1 and \
                len(stmt.other.stmts) == 1:
            then_stmt, else_stmt = stmt.then.stmts[0], stmt.other.stmts[0]
            if (isinstance(then_stmt, Assign) and isinstance(else_stmt, Assign)
                    and isinstance(then_stmt.target, Ident)
                    and isinstance(else_stmt.target, Ident)
                    and then_stmt.target.name == else_stmt.target.name
                    and not then_stmt.op and not else_stmt.op):
                changed[0] += 1
                return Assign(
                    target=Ident(name=then_stmt.target.name),
                    value=Cond(test=stmt.test, then=then_stmt.value,
                               other=else_stmt.value),
                    line=stmt.line)
    if isinstance(stmt, Block):
        # Flatten a bare nested block into its parent.
        changed[0] += 1
        return list(stmt.stmts)
    return stmt


__all__ = ["prune_control", "recode_pointers"]
