"""Shared helpers for recoder transformations."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.cir.nodes import Block, For, FuncDef, Stmt


class TransformError(Exception):
    """Raised when a transformation's applicability conditions fail."""


@dataclass
class TransformReport:
    """What a transformation did, plus designer-facing warnings."""

    name: str
    description: str = ""
    warnings: List[str] = field(default_factory=list)
    nodes_changed: int = 0

    def __repr__(self) -> str:
        tail = f", {len(self.warnings)} warnings" if self.warnings else ""
        return f"TransformReport({self.name}: {self.description}{tail})"


def find_loop(func: FuncDef, line: int) -> For:
    """The for-loop starting at the given source line."""
    for node in func.body.walk():
        if isinstance(node, For) and node.line == line:
            return node
    raise TransformError(f"no for-loop at line {line} in {func.name!r}")


def find_enclosing_block(func: FuncDef, stmt: Stmt) -> Block:
    """The block whose stmt list directly contains ``stmt``."""
    for node in func.body.walk():
        if isinstance(node, Block) and stmt in node.stmts:
            return node
    raise TransformError(f"statement at line {stmt.line} not found in a "
                         f"block of {func.name!r}")


def top_level_index(func: FuncDef, line: int) -> int:
    """Index of the top-level statement starting at ``line``."""
    for index, stmt in enumerate(func.body.stmts):
        if stmt.line == line:
            return index
    raise TransformError(f"no top-level statement at line {line}")


__all__ = ["TransformError", "TransformReport", "find_enclosing_block",
           "find_loop", "top_level_index"]
