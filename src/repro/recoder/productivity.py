"""Productivity model for recoding effort (section VI).

"our studies on industrial size examples have shown that about 90% of the
system design time is spent on coding and re-coding of MPSoC models" and
"our experimental results show a great reduction in modeling time and
significant productivity gains up to two orders of magnitude over manual
recoding."

The model compares two ways to reach the same recoded source:

- **manual**: the designer types the textual delta by hand.  Effort =
  characters inserted/removed (a diff-based lower bound -- real manual
  recoding also costs re-reading and debugging, so this is conservative);
- **recoder**: the designer invokes transformations.  Effort = a fixed
  interaction cost per invocation (select region + pick transformation +
  confirm).

Both are expressed in keystroke-equivalents so their ratio is unitless.
"""

from __future__ import annotations

from dataclasses import dataclass
from difflib import SequenceMatcher

# A tool interaction (select + menu + confirm) costed in keystroke
# equivalents; deliberately generous to keep the comparison conservative.
KEYSTROKES_PER_INVOCATION = 12.0


def manual_effort_chars(before: str, after: str) -> int:
    """Characters a designer must type/delete to turn ``before`` into
    ``after`` (minimal edit script via difflib opcodes)."""
    matcher = SequenceMatcher(a=before, b=after, autojunk=False)
    effort = 0
    for op, a_start, a_end, b_start, b_end in matcher.get_opcodes():
        if op == "insert":
            effort += b_end - b_start
        elif op == "delete":
            effort += a_end - a_start
        elif op == "replace":
            effort += (a_end - a_start) + (b_end - b_start)
    return effort


@dataclass
class ProductivityReport:
    """Effort comparison for one recoding session."""

    manual_keystrokes: int
    tool_invocations: int
    manual_edits: int
    tool_keystrokes: float = 0.0
    gain: float = 0.0

    def __post_init__(self) -> None:
        self.tool_keystrokes = (
            self.tool_invocations * KEYSTROKES_PER_INVOCATION
            + self.manual_edits * KEYSTROKES_PER_INVOCATION)
        if self.tool_keystrokes > 0:
            self.gain = self.manual_keystrokes / self.tool_keystrokes
        else:
            self.gain = float("inf") if self.manual_keystrokes else 1.0


def productivity_gain(session, original_text: str) -> ProductivityReport:
    """Compare a finished :class:`RecoderSession` against hand-typing the
    same delta."""
    manual = manual_effort_chars(original_text, session.text)
    return ProductivityReport(
        manual_keystrokes=manual,
        tool_invocations=len(session.invocations),
        manual_edits=session.manual_edits)


__all__ = ["KEYSTROKES_PER_INVOCATION", "ProductivityReport",
           "manual_effort_chars", "productivity_gain"]
