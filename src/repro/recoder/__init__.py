"""Designer-controlled Source Recoder (paper section VI, Figure 3).

"Our Source Recoder is an intelligent union of editor, compiler, and
transformation and analysis tools.  It consists of a Text Editor
maintaining a Document Object and a set of Analysis and Transformation
Tools working on an Abstract Syntax Tree (AST) of the design model.
Preprocessor and Parser apply changes in the document to the AST, and a
Code Generator synchronizes changes in the AST to the document object."

- :mod:`repro.recoder.document` -- the Document Object (text + edit log);
- :mod:`repro.recoder.recoder` -- the synchronization engine and the
  designer-facing session API;
- :mod:`repro.recoder.transforms` -- the interactive transformations:
  loop splitting, shared-data access analysis, vector splitting, variable
  localization, channel-based synchronization, pointer recoding, control
  pruning, and pipeline (loop-fission) exposure;
- :mod:`repro.recoder.productivity` -- the edit-effort model behind the
  paper's "up to two orders of magnitude" productivity claim (E10).
"""

from repro.recoder.document import Document, EditOp
from repro.recoder.recoder import RecoderSession, SyncError
from repro.recoder.productivity import (
    ProductivityReport,
    manual_effort_chars,
    productivity_gain,
)
from repro.recoder.transforms import (
    TransformError,
    analyze_shared_accesses,
    insert_array_channel_sync,
    make_array_channel_externals,
    insert_channel_sync,
    localize_accesses,
    prune_control,
    recode_pointers,
    split_loop,
    split_loop_fission,
    split_shared_vector,
)

__all__ = [
    "Document", "EditOp", "ProductivityReport", "RecoderSession",
    "SyncError", "TransformError", "analyze_shared_accesses",
    "insert_array_channel_sync", "insert_channel_sync",
    "localize_accesses", "make_array_channel_externals",
    "manual_effort_chars",
    "productivity_gain", "prune_control", "recode_pointers", "split_loop",
    "split_loop_fission", "split_shared_vector",
]
