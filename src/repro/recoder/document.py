"""The Document Object: the text side of the recoder (Figure 3).

A :class:`Document` is the editable source text.  Every mutation is
logged as an :class:`EditOp` with its character cost, which feeds the
productivity model: manual recoding pays per character typed, while a
tool-applied transformation replaces whole regions at a fixed interaction
cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple


@dataclass
class EditOp:
    """One recorded document mutation."""

    kind: str          # 'insert' | 'delete' | 'replace' | 'regenerate'
    position: int      # character offset
    removed: str = ""
    inserted: str = ""
    by_tool: bool = False

    @property
    def chars_typed(self) -> int:
        """Characters a human would type for this edit (tool edits: 0)."""
        if self.by_tool:
            return 0
        return len(self.inserted) + (1 if self.removed else 0)


class Document:
    """Mutable source-text buffer with an edit log."""

    def __init__(self, text: str = "") -> None:
        self._text = text
        self.edits: List[EditOp] = []
        self.version = 0

    @property
    def text(self) -> str:
        return self._text

    def __len__(self) -> int:
        return len(self._text)

    @property
    def line_count(self) -> int:
        return self._text.count("\n") + (0 if self._text.endswith("\n")
                                         else 1 if self._text else 0)

    # ------------------------------------------------------------------
    def insert(self, position: int, text: str, by_tool: bool = False) -> None:
        self._check_span(position, position)
        self._text = self._text[:position] + text + self._text[position:]
        self.edits.append(EditOp("insert", position, inserted=text,
                                 by_tool=by_tool))
        self.version += 1

    def delete(self, start: int, end: int, by_tool: bool = False) -> str:
        self._check_span(start, end)
        removed = self._text[start:end]
        self._text = self._text[:start] + self._text[end:]
        self.edits.append(EditOp("delete", start, removed=removed,
                                 by_tool=by_tool))
        self.version += 1
        return removed

    def replace(self, start: int, end: int, text: str,
                by_tool: bool = False) -> None:
        self._check_span(start, end)
        removed = self._text[start:end]
        self._text = self._text[:start] + text + self._text[end:]
        self.edits.append(EditOp("replace", start, removed=removed,
                                 inserted=text, by_tool=by_tool))
        self.version += 1

    def set_text(self, text: str, by_tool: bool = True) -> None:
        """Wholesale regeneration (the Code Generator path of Figure 3)."""
        self.edits.append(EditOp("regenerate", 0, removed=self._text,
                                 inserted=text, by_tool=by_tool))
        self._text = text
        self.version += 1

    # ------------------------------------------------------------------
    def line_span(self, line_no: int) -> Tuple[int, int]:
        """(start, end) character offsets of a 1-based line."""
        lines = self._text.splitlines(keepends=True)
        if not 1 <= line_no <= len(lines):
            raise IndexError(f"line {line_no} out of range")
        start = sum(len(l) for l in lines[:line_no - 1])
        return start, start + len(lines[line_no - 1])

    def manual_chars_typed(self) -> int:
        return sum(edit.chars_typed for edit in self.edits)

    def tool_edit_count(self) -> int:
        return sum(1 for edit in self.edits if edit.by_tool)

    def _check_span(self, start: int, end: int) -> None:
        if not 0 <= start <= end <= len(self._text):
            raise IndexError(f"bad span [{start}:{end}] for document of "
                             f"length {len(self._text)}")


__all__ = ["Document", "EditOp"]
