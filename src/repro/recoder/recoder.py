"""The recoder session: Document <-> AST synchronization (Figure 3).

The session holds both representations and keeps them consistent:

- a **manual edit** changes the document; Preprocessor+Parser re-derive
  the AST ("changes ... are applied to the AST on-the-fly");
- a **transformation** mutates the AST; the Code Generator re-derives the
  document ("a Code Generator synchronizes changes in the AST to the
  document object").

Every state change is undoable, transformations are validated by
re-running the program before/after (the designer can skip validation to
overrule the tools, per the paper's designer-in-control philosophy), and
the session accumulates the interaction statistics the productivity model
consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, List, Optional

from repro.cir.codegen import emit
from repro.cir.interp import run_program
from repro.cir.nodes import Program
from repro.cir.parser import ParseError, parse
from repro.recoder.document import Document
from repro.recoder.transforms.base import TransformError, TransformReport


class SyncError(Exception):
    """Raised when the document cannot be parsed back into an AST."""


@dataclass
class TransformInvocation:
    """Log entry: one designer interaction with the transformation tools."""

    name: str
    report: TransformReport
    overruled: bool = False


class RecoderSession:
    """One model, two synchronized representations, full undo."""

    def __init__(self, source: str, entry: str = "main",
                 validate_runs: bool = True,
                 run_args: Optional[List[Any]] = None,
                 externals: Optional[dict] = None) -> None:
        self.document = Document(source)
        try:
            self.ast: Program = parse(source)
        except ParseError as error:
            raise SyncError(f"initial source does not parse: {error}") \
                from error
        self.entry = entry
        self.validate_runs = validate_runs
        self.run_args = run_args or []
        self.externals = externals or {}
        self._undo_stack: List[str] = []
        self.invocations: List[TransformInvocation] = []
        self.manual_edits = 0

    # ------------------------------------------------------------------
    # document -> AST (Preprocessor + Parser path)
    # ------------------------------------------------------------------
    def edit_text(self, start: int, end: int, replacement: str) -> None:
        """A manual (human-typed) edit, applied to the AST on-the-fly."""
        self._undo_stack.append(self.document.text)
        self.document.replace(start, end, replacement, by_tool=False)
        self.manual_edits += 1
        self._reparse()

    def replace_line(self, line_no: int, new_line: str) -> None:
        start, end = self.document.line_span(line_no)
        self.edit_text(start, end, new_line if new_line.endswith("\n")
                       else new_line + "\n")

    def _reparse(self) -> None:
        try:
            self.ast = parse(self.document.text)
        except ParseError as error:
            self.document.set_text(self._undo_stack.pop(), by_tool=True)
            self.ast = parse(self.document.text)
            raise SyncError(f"edit rejected, document would not parse: "
                            f"{error}") from error

    # ------------------------------------------------------------------
    # AST -> document (Transformation tools + Code Generator path)
    # ------------------------------------------------------------------
    def apply(self, transform: Callable[..., TransformReport], *args,
              force: bool = False, **kwargs) -> TransformReport:
        """Invoke a transformation tool on the AST.

        With validation on, the program is interpreted before and after;
        a result mismatch rolls the transformation back unless ``force``
        (the designer overrules the analysis).  Transformations with
        warnings also require ``force`` -- the designer must concur."""
        before_text = self.document.text
        baseline = self._run() if self.validate_runs else None
        try:
            report = transform(self.ast, *args, **kwargs)
        except TransformError:
            self.ast = parse(before_text)  # discard partial mutation
            raise
        if report.warnings and not force:
            self.ast = parse(before_text)
            raise TransformError(
                f"{report.name} reported warnings (pass force=True to "
                f"overrule): {report.warnings}")
        regenerated = emit(self.ast)
        if self.validate_runs:
            after = self._run()
            if not self._same_outcome(baseline, after):
                if not force:
                    self.ast = parse(before_text)
                    raise TransformError(
                        f"{report.name} changed program behaviour "
                        f"({baseline} -> {after}); rolled back")
        self._undo_stack.append(before_text)
        self.document.set_text(regenerated, by_tool=True)
        self.invocations.append(TransformInvocation(report.name, report,
                                                    overruled=force))
        return report

    def _run(self):
        result = run_program(parse(emit(self.ast)), entry=self.entry,
                             args=list(self.run_args),
                             externals=dict(self.externals))
        return (result.return_value, tuple(result.output))

    @staticmethod
    def _same_outcome(before, after) -> bool:
        return before == after

    # ------------------------------------------------------------------
    def undo(self) -> None:
        if not self._undo_stack:
            raise IndexError("nothing to undo")
        text = self._undo_stack.pop()
        self.document.set_text(text, by_tool=True)
        self.ast = parse(text)
        if self.invocations:
            self.invocations.pop()

    @property
    def text(self) -> str:
        return self.document.text

    def interaction_count(self) -> int:
        """Designer interactions: tool invocations + manual edits."""
        return len(self.invocations) + self.manual_edits


__all__ = ["RecoderSession", "SyncError", "TransformInvocation"]
