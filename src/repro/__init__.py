"""Reproduction of *Programming MPSoC Platforms: Road Works Ahead!* (DATE 2009).

The paper is a special-session survey of MPSoC programming challenges.  This
package implements every system it describes, on a pure-Python simulated
substrate:

- :mod:`repro.desim` -- discrete-event simulation kernel (SystemC stand-in).
- :mod:`repro.cir` -- a mini-C language with analyses (C stand-in).
- :mod:`repro.dataflow` -- SDF/CSDF graphs, throughput and buffer sizing.
- :mod:`repro.rt` -- time-triggered and data-driven real-time executives.
- :mod:`repro.manycore` -- homogeneous many-core HW/OS model (section II).
- :mod:`repro.vp` -- virtual platform with a tiny ISA and a non-intrusive
  debugger (section VII).
- :mod:`repro.maps` -- the MAPS parallelization and mapping flow (section IV).
- :mod:`repro.hopes` -- the HOPES/CIC retargetable programming flow (section V).
- :mod:`repro.recoder` -- the designer-controlled Source Recoder (section VI).
- :mod:`repro.snap` -- exact whole-SoC checkpoint/restore: time-travel
  debugging and warm-started campaigns.
- :mod:`repro.core` -- a unified design-flow API over all of the above.
"""

__version__ = "1.0.0"

__all__ = [
    "desim",
    "cir",
    "dataflow",
    "rt",
    "manycore",
    "vp",
    "maps",
    "hopes",
    "recoder",
    "snap",
    "core",
]
