"""Kernel profiling probe: a :class:`~repro.desim.SimObserver`.

Attaches to a :class:`~repro.desim.Simulator` through the kernel's
observer interface (the kernel itself stays dependency-free -- it only
calls observers when at least one is installed) and derives:

- **queue depth** -- sampled into the sink as a counter series;
- **events/sec**  -- simulated events per host wall-clock second;
- **per-process dwell times** -- simulated time spent occupying the
  kernel (``Delay`` requests become spans on the ``kernel`` track) and
  simulated time spent blocked on events/processes (a histogram).
"""

from __future__ import annotations

import time
from typing import Dict, Optional

from repro.desim.kernel import Delay, Process, SimObserver, Simulator
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import TraceSink


class KernelProbe(SimObserver):
    """Profiling observer over one simulator.

    ``sink`` receives per-process ``Delay`` occupancy spans on
    ``span_track`` and a queue-depth counter series sampled every
    ``counter_interval`` executed events.  ``metrics`` accumulates
    counters (events, resumes, finishes), the queue high-water mark and
    dwell histograms; both are optional and a probe with neither is a
    cheap no-op.

    Contract with the ISS fast path: while any :class:`SimObserver` is
    installed, virtual-platform cores disable temporal decoupling and
    retire one instruction per kernel event, so the probe observes the
    exact per-instruction event ordering of an un-instrumented
    ``quantum=1`` run (at per-instruction cost).  Scheduled items may be
    recycled by the kernel's re-arm fast path, so observers must not key
    state off item identity.
    """

    def __init__(self, sink: Optional[TraceSink] = None,
                 metrics: Optional[MetricsRegistry] = None,
                 span_track: str = "kernel",
                 counter_interval: int = 1) -> None:
        if counter_interval < 1:
            raise ValueError("counter_interval must be >= 1")
        self.sink = sink
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.span_track = span_track
        self.counter_interval = counter_interval
        self.events_executed = 0
        self._wall_start = time.perf_counter()
        self._wall_elapsed: Optional[float] = None
        # pid -> sim time of the last blocking (non-Delay) yield.
        self._blocked_since: Dict[int, float] = {}

    # ------------------------------------------------------------------
    # SimObserver interface
    # ------------------------------------------------------------------
    def on_schedule(self, sim: Simulator, item) -> None:
        self.metrics.gauge("kernel.queue_peak").set(sim.pending)

    def on_execute(self, sim: Simulator, item) -> None:
        self.events_executed += 1
        self.metrics.counter("kernel.events").inc()
        if self.sink is not None and \
                self.events_executed % self.counter_interval == 0:
            self.sink.counter("queue_depth", sim.pending,
                              track=self.span_track, ts=sim.now)

    def on_process_resume(self, sim: Simulator, proc: Process) -> None:
        self.metrics.counter("kernel.resumes").inc()
        blocked_at = self._blocked_since.pop(proc.pid, None)
        if blocked_at is not None:
            self.metrics.histogram("kernel.wait_dwell").observe(
                sim.now - blocked_at)

    def on_process_yield(self, sim: Simulator, proc: Process,
                         request) -> None:
        if isinstance(request, Delay):
            self.metrics.histogram("kernel.run_dwell").observe(
                request.duration)
            if self.sink is not None and request.duration > 0:
                self.sink.complete(proc.name, ts=sim.now,
                                   dur=request.duration,
                                   track=self.span_track, pid=proc.pid)
        else:
            # WaitEvent / WaitProcess / bare Event: the process blocks.
            self._blocked_since[proc.pid] = sim.now

    def on_process_finish(self, sim: Simulator, proc: Process) -> None:
        self.metrics.counter("kernel.finishes").inc()
        if proc.error is not None:
            self.metrics.counter("kernel.failures").inc()
        self._blocked_since.pop(proc.pid, None)
        if self.sink is not None:
            self.sink.instant(f"{proc.name}.finish", track=self.span_track,
                              ts=sim.now, error=repr(proc.error)
                              if proc.error else None)

    # ------------------------------------------------------------------
    # summary
    # ------------------------------------------------------------------
    def finish(self) -> None:
        """Freeze the wall clock (call when the observed run is over)."""
        if self._wall_elapsed is None:
            self._wall_elapsed = time.perf_counter() - self._wall_start

    @property
    def events_per_second(self) -> float:
        """Simulated events executed per host wall-clock second."""
        elapsed = self._wall_elapsed \
            if self._wall_elapsed is not None \
            else time.perf_counter() - self._wall_start
        return self.events_executed / elapsed if elapsed > 0 else 0.0

    def summary(self) -> Dict[str, object]:
        return {
            "events": self.events_executed,
            "events_per_second": self.events_per_second,
            "metrics": self.metrics.snapshot(),
        }


def observe(sim: Simulator, sink: Optional[TraceSink] = None,
            metrics: Optional[MetricsRegistry] = None,
            span_track: str = "kernel",
            counter_interval: int = 1) -> KernelProbe:
    """Attach a :class:`KernelProbe` to ``sim`` and return it."""
    probe = KernelProbe(sink=sink, metrics=metrics, span_track=span_track,
                        counter_interval=counter_interval)
    sim.add_observer(probe)
    return probe


__all__ = ["KernelProbe", "observe"]
