"""Unified trace sink: spans, instants and counters across every layer.

The paper's section VII argues the decisive advantage of a virtual
platform is observability -- "a history of function execution within the
different processes, and their access to memories and peripherals" with
zero perturbation.  :class:`TraceSink` is that history as a first-class
subsystem: the desim kernel, the virtual platform tracer, the many-core
OS scheduler, the real-time executives and the MAPS flow all emit into
one sink, which exports Chrome trace-event JSON (loadable in Perfetto or
``chrome://tracing``) and answers in-memory queries.

Records live on named *tracks* ("kernel", "os/core0", "maps.flow", ...),
one Chrome thread per track.  Three record shapes:

- **instant** (``ph='i'``)  -- a point event (bus access, irq edge);
- **span**    (``ph='X'``)  -- a named duration (a time slice, a flow
  phase, a process occupying the kernel for ``Delay(d)``);
- **counter** (``ph='C'``)  -- a sampled numeric series (queue depth,
  ready-queue length, FIFO occupancy).

Timestamps default to the sink's clock (host ``perf_counter`` in
microseconds since sink creation); simulation-side emitters pass their
simulated time explicitly, so a track is always self-consistent.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple


@dataclass
class TraceRecord:
    """One emitted record (Chrome trace-event phases 'X', 'i' or 'C')."""

    name: str
    ph: str
    ts: float
    track: str = "main"
    dur: Optional[float] = None
    args: Dict[str, Any] = field(default_factory=dict)

    def __repr__(self) -> str:
        dur = f" dur={self.dur}" if self.dur is not None else ""
        return (f"[{self.ts:>10.2f}] {self.track:<12} {self.ph} "
                f"{self.name}{dur} {self.args}")


class _OpenSpan:
    __slots__ = ("name", "ts", "args")

    def __init__(self, name: str, ts: float, args: Dict[str, Any]) -> None:
        self.name = name
        self.ts = ts
        self.args = args


class TraceSink:
    """In-memory trace store with Chrome trace-event export.

    ``clock`` supplies default timestamps for host-side emitters (the
    MAPS flow phases); anything running on a :class:`~repro.desim.Simulator`
    passes ``ts=sim.now`` explicitly instead.
    """

    def __init__(self, clock: Optional[Callable[[], float]] = None) -> None:
        if clock is None:
            origin = time.perf_counter()
            clock = lambda: (time.perf_counter() - origin) * 1e6  # noqa: E731
        self._clock = clock
        self.records: List[TraceRecord] = []
        self._open: Dict[str, List[_OpenSpan]] = {}
        self._track_order: List[str] = []

    # ------------------------------------------------------------------
    # emission
    # ------------------------------------------------------------------
    def _ts(self, ts: Optional[float]) -> float:
        return self._clock() if ts is None else ts

    def _touch_track(self, track: str) -> None:
        if track not in self._open:
            self._open[track] = []
            self._track_order.append(track)

    def instant(self, name: str, track: str = "main",
                ts: Optional[float] = None, **args: Any) -> TraceRecord:
        """Record a point event."""
        self._touch_track(track)
        record = TraceRecord(name, "i", self._ts(ts), track, args=args)
        self.records.append(record)
        return record

    def complete(self, name: str, ts: float, dur: float,
                 track: str = "main", **args: Any) -> TraceRecord:
        """Record a span whose start and duration are already known."""
        self._touch_track(track)
        record = TraceRecord(name, "X", ts, track, dur=dur, args=args)
        self.records.append(record)
        return record

    def begin(self, name: str, track: str = "main",
              ts: Optional[float] = None, **args: Any) -> None:
        """Open a span on ``track``; close it with :meth:`end` (LIFO)."""
        self._touch_track(track)
        self._open[track].append(_OpenSpan(name, self._ts(ts), args))

    def end(self, track: str = "main",
            ts: Optional[float] = None) -> Optional[TraceRecord]:
        """Close the innermost open span on ``track``.

        Unbalanced ends are ignored (a ``ret`` without a traced ``jal``).
        """
        stack = self._open.get(track)
        if not stack:
            return None
        span = stack.pop()
        end_ts = self._ts(ts)
        return self.complete(span.name, span.ts, max(0.0, end_ts - span.ts),
                             track, **span.args)

    @contextmanager
    def span(self, name: str, track: str = "main",
             ts: Optional[float] = None, **args: Any) -> Iterator[None]:
        """Context manager: a span covering the ``with`` body."""
        self.begin(name, track, ts, **args)
        try:
            yield
        finally:
            self.end(track)

    def counter(self, name: str, value: float, track: str = "counters",
                ts: Optional[float] = None) -> TraceRecord:
        """Record one sample of a numeric series."""
        self._touch_track(track)
        record = TraceRecord(name, "C", self._ts(ts), track,
                             args={"value": value})
        self.records.append(record)
        return record

    # ------------------------------------------------------------------
    # in-memory query API
    # ------------------------------------------------------------------
    def tracks(self) -> List[str]:
        """Track names in first-emission order."""
        return list(self._track_order)

    def _filter(self, ph: str, track: Optional[str],
                name: Optional[str]) -> List[TraceRecord]:
        return [r for r in self.records if r.ph == ph
                and (track is None or r.track == track)
                and (name is None or r.name == name)]

    def spans(self, track: Optional[str] = None,
              name: Optional[str] = None) -> List[TraceRecord]:
        return self._filter("X", track, name)

    def instants(self, track: Optional[str] = None,
                 name: Optional[str] = None) -> List[TraceRecord]:
        return self._filter("i", track, name)

    def counter_series(self, name: str,
                       track: Optional[str] = None) -> List[Tuple[float, float]]:
        """The sampled (ts, value) series of one counter."""
        return [(r.ts, r.args["value"])
                for r in self._filter("C", track, name)]

    def total_duration(self, track: Optional[str] = None,
                       name: Optional[str] = None) -> float:
        """Summed duration of matching spans (a poor man's profile)."""
        return sum(r.dur or 0.0 for r in self.spans(track, name))

    def __len__(self) -> int:
        return len(self.records)

    # ------------------------------------------------------------------
    # Chrome trace-event export
    # ------------------------------------------------------------------
    def to_chrome(self) -> Dict[str, Any]:
        """Export as a Chrome trace-event JSON object.

        One process (pid 1), one thread per track, with thread-name
        metadata so Perfetto labels the rows.  Events are sorted by
        timestamp so every track is monotonic.
        """
        tids = {track: tid for tid, track in
                enumerate(self._track_order, start=1)}
        events: List[Dict[str, Any]] = []
        for track, tid in tids.items():
            events.append({"name": "thread_name", "ph": "M", "pid": 1,
                           "tid": tid, "args": {"name": track}})
        for record in sorted(self.records, key=lambda r: r.ts):
            event: Dict[str, Any] = {
                "name": record.name, "ph": record.ph, "ts": record.ts,
                "pid": 1, "tid": tids[record.track], "cat": record.track,
                "args": dict(record.args),
            }
            if record.ph == "X":
                event["dur"] = record.dur or 0.0
            events.append(event)
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def write(self, path: str) -> str:
        """Write the Chrome trace JSON to ``path`` and return the path."""
        with open(path, "w") as handle:
            json.dump(self.to_chrome(), handle, indent=1)
        return path


class NullSink:
    """API-compatible sink that drops everything (for overhead baselines)."""

    def instant(self, *args: Any, **kwargs: Any) -> None:
        return None

    def complete(self, *args: Any, **kwargs: Any) -> None:
        return None

    def begin(self, *args: Any, **kwargs: Any) -> None:
        return None

    def end(self, *args: Any, **kwargs: Any) -> None:
        return None

    @contextmanager
    def span(self, *args: Any, **kwargs: Any) -> Iterator[None]:
        yield

    def counter(self, *args: Any, **kwargs: Any) -> None:
        return None


__all__ = ["NullSink", "TraceRecord", "TraceSink"]
