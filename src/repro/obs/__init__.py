"""Unified observability layer (paper section VII).

One sink, three record shapes (spans, instants, counters), every layer:

- :class:`TraceSink` -- in-memory trace store + Chrome trace-event JSON
  export (open the dump in Perfetto or ``chrome://tracing``);
- :class:`MetricsRegistry` -- counters, gauges and fixed-bucket
  histograms replacing ad-hoc stat dicts;
- :class:`KernelProbe` / :func:`observe` -- profiling hooks on the desim
  kernel via its observer interface (queue depth, events/sec, dwell
  times) with zero cost when nothing is attached.

The checking layer built on top of this observation -- the
happens-before data-race sanitizer -- lives in :mod:`repro.sanitize`
and emits its findings here as ``race.*`` counters and
``race.data_race`` instants.

See DESIGN.md ("Observability layer") for the wiring of each layer.
"""

from repro.obs.metrics import (
    Counter, DEFAULT_BUCKETS, Gauge, Histogram, MetricsRegistry,
)
from repro.obs.probe import KernelProbe, observe
from repro.obs.trace import NullSink, TraceRecord, TraceSink

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "KernelProbe",
    "MetricsRegistry",
    "NullSink",
    "TraceRecord",
    "TraceSink",
    "observe",
]
