"""Metrics registry: counters, gauges and fixed-bucket histograms.

Replaces the ad-hoc stat dicts scattered through the OS scheduler, the
real-time executives and the MAPS flow with one queryable registry.  All
instruments are cheap enough to update on hot simulation paths (integer
adds and one bisect per histogram observation).
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Dict, List, Optional, Sequence

DEFAULT_BUCKETS = (1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0,
                   1000.0, 2500.0, 5000.0, 10000.0)


class Counter:
    """Monotonically increasing count."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r}: negative increment")
        self.value += amount

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, {self.value})"


class Gauge:
    """A value that goes up and down; tracks its high-water mark."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0
        self.max_value = 0.0

    def set(self, value: float) -> None:
        self.value = value
        if value > self.max_value:
            self.max_value = value

    def inc(self, amount: float = 1.0) -> None:
        self.set(self.value + amount)

    def dec(self, amount: float = 1.0) -> None:
        self.set(self.value - amount)

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}, {self.value}, max={self.max_value})"


class Histogram:
    """Fixed-bucket histogram with percentile estimates.

    ``buckets`` are inclusive upper bounds; an implicit +inf bucket
    catches the tail.  Percentiles are estimated as the upper bound of
    the bucket containing the requested rank -- the standard
    fixed-bucket trade-off (bounded memory, bounded error).
    """

    def __init__(self, name: str,
                 buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError(f"histogram {name!r}: buckets must be "
                             f"non-empty and ascending")
        self.name = name
        self.buckets = list(buckets)
        self.counts = [0] * (len(self.buckets) + 1)  # +1 = +inf overflow
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        index = bisect_left(self.buckets, value)
        self.counts[index] += 1
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """Estimated value at percentile ``p`` in [0, 100]."""
        if not 0 <= p <= 100:
            raise ValueError(f"percentile {p} outside [0, 100]")
        if self.count == 0:
            return 0.0
        rank = p / 100.0 * self.count
        seen = 0
        for index, bucket_count in enumerate(self.counts):
            seen += bucket_count
            if seen >= rank and bucket_count:
                if index < len(self.buckets):
                    return self.buckets[index]
                return self.max if self.max is not None else float("inf")
        return self.max if self.max is not None else 0.0

    def __repr__(self) -> str:
        return (f"Histogram({self.name!r}, n={self.count}, "
                f"mean={self.mean:.3g}, p95={self.percentile(95):.3g})")


class MetricsRegistry:
    """Get-or-create home for all instruments of one run/subsystem."""

    def __init__(self, prefix: str = "") -> None:
        self.prefix = prefix
        self._instruments: Dict[str, Any] = {}

    def _key(self, name: str) -> str:
        return f"{self.prefix}{name}" if self.prefix else name

    def _get(self, name: str, factory, kind) -> Any:
        key = self._key(name)
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = factory(key)
            self._instruments[key] = instrument
        elif not isinstance(instrument, kind):
            raise TypeError(f"metric {key!r} already registered as "
                            f"{type(instrument).__name__}")
        return instrument

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge, Gauge)

    def histogram(self, name: str,
                  buckets: Sequence[float] = DEFAULT_BUCKETS) -> Histogram:
        return self._get(name, lambda key: Histogram(key, buckets), Histogram)

    def names(self) -> List[str]:
        return sorted(self._instruments)

    def get(self, name: str) -> Optional[Any]:
        return self._instruments.get(self._key(name))

    def snapshot(self) -> Dict[str, Any]:
        """A plain-dict view of every instrument (for reports/tests)."""
        out: Dict[str, Any] = {}
        for name in self.names():
            instrument = self._instruments[name]
            if isinstance(instrument, Counter):
                out[name] = instrument.value
            elif isinstance(instrument, Gauge):
                out[name] = {"value": instrument.value,
                             "max": instrument.max_value}
            else:
                out[name] = {"count": instrument.count,
                             "mean": instrument.mean,
                             "min": instrument.min,
                             "max": instrument.max,
                             "p50": instrument.percentile(50),
                             "p95": instrument.percentile(95),
                             "p99": instrument.percentile(99)}
        return out


__all__ = ["Counter", "DEFAULT_BUCKETS", "Gauge", "Histogram",
           "MetricsRegistry"]
