"""Event and signal primitives for the simulation kernel.

An :class:`Event` is a one-shot (but re-armable) synchronization point that
processes can wait on and that any code can ``trigger``.  A :class:`Signal`
is a value holder that fires an internal event whenever its value changes;
signals are the observable "wires" of the virtual platform, and the debugger
sets watchpoints on them (paper section VII).
"""

from __future__ import annotations

from typing import Any, Callable, List


class Event:
    """A named synchronization event.

    Processes wait on an event via ``yield WaitEvent(event)``; other
    processes or model code fire it with :meth:`trigger`.  After a trigger
    the event automatically re-arms, so the same object can be reused for
    periodic notification (like SystemC's ``sc_event``).
    """

    def __init__(self, name: str = "event") -> None:
        self.name = name
        self._waiters: List[Callable[[Any], None]] = []
        self._callbacks: List[Callable[[Any], None]] = []
        self.trigger_count = 0
        self.last_payload: Any = None

    def subscribe(self, callback: Callable[[Any], None]) -> None:
        """Register a persistent callback invoked on every trigger."""
        self._callbacks.append(callback)

    def unsubscribe(self, callback: Callable[[Any], None]) -> None:
        self._callbacks.remove(callback)

    def add_waiter(self, resume: Callable[[Any], None]) -> None:
        """Register a one-shot waiter (used by the kernel, not user code)."""
        self._waiters.append(resume)

    def remove_waiter(self, resume: Callable[[Any], None]) -> None:
        if resume in self._waiters:
            self._waiters.remove(resume)

    def trigger(self, payload: Any = None) -> None:
        """Fire the event, resuming all current waiters.

        Waiters registered *during* the trigger (e.g. a resumed process that
        immediately re-waits) are not woken by this trigger.
        """
        self.trigger_count += 1
        self.last_payload = payload
        waiters, self._waiters = self._waiters, []
        for resume in waiters:
            resume(payload)
        for callback in list(self._callbacks):
            callback(payload)

    @property
    def has_waiters(self) -> bool:
        return bool(self._waiters)

    def __repr__(self) -> str:
        return f"Event({self.name!r}, triggers={self.trigger_count})"


class Signal:
    """A value holder with change notification.

    ``Signal`` models a hardware wire or register visible to the platform
    debugger.  Reads are free; a write that changes the value fires
    :attr:`changed` (and :attr:`posedge`/:attr:`negedge` for boolean-like
    transitions).  The virtual-platform debugger attaches watchpoints by
    subscribing to these events -- non-intrusively, since subscription does
    not alter simulated time.
    """

    def __init__(self, name: str = "signal", initial: Any = 0) -> None:
        self.name = name
        self._value = initial
        self.changed = Event(f"{name}.changed")
        self.posedge = Event(f"{name}.posedge")
        self.negedge = Event(f"{name}.negedge")
        self.write_count = 0

    @property
    def value(self) -> Any:
        return self._value

    @value.setter
    def value(self, new: Any) -> None:
        self.write(new)

    def read(self) -> Any:
        return self._value

    def write(self, new: Any) -> None:
        """Write ``new``; fires change/edge events only on a value change."""
        self.write_count += 1
        old = self._value
        if new == old:
            return
        self._value = new
        self.changed.trigger((old, new))
        if not old and new:
            self.posedge.trigger((old, new))
        elif old and not new:
            self.negedge.trigger((old, new))

    def force(self, new: Any) -> None:
        """Write without firing events (debugger back-door, used for state
        injection during a suspended system)."""
        self._value = new

    @property
    def observed(self) -> bool:
        """True when anything subscribes to or waits on this signal's
        change/edge events.  The ISS fast path polls this: an observed
        ``pc_signal`` forces per-instruction synchronization so signal
        watchpoints see every intermediate value."""
        for event in (self.changed, self.posedge, self.negedge):
            if event._waiters or event._callbacks:
                return True
        return False

    def __repr__(self) -> str:
        return f"Signal({self.name!r}, value={self._value!r})"


class EventGroup:
    """Trigger-any aggregation of several events.

    Waiting on the group resumes when *any* member fires.  Used by executives
    that wait for "data on any input channel".
    """

    def __init__(self, events: List[Event], name: str = "group") -> None:
        self.name = name
        self.events = list(events)
        self.any = Event(f"{name}.any")
        for event in self.events:
            event.subscribe(self._on_member)

    def _on_member(self, payload: Any) -> None:
        self.any.trigger(payload)

    def close(self) -> None:
        for event in self.events:
            event.unsubscribe(self._on_member)


__all__ = ["Event", "EventGroup", "Signal"]
