"""Communication channels for simulation processes.

Two channel flavours are provided:

- :class:`Fifo` -- bounded FIFO with *back-pressure*: a producer blocks when
  the buffer is full and a consumer blocks when it is empty.  This is the
  channel used by the data-driven real-time executive (paper section III);
  back-pressure is precisely what makes data-driven systems robust to
  execution-time overruns.
- :class:`Mailbox` -- unbounded asynchronous message queue, the primitive of
  the section-II programming model ("asynchronously communicating,
  internally sequential components").

Both are generator-helpers: process code uses them as

    yield from fifo.put(item)
    item = yield from fifo.get()
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Generator, List, Optional

from repro.desim.events import Event
from repro.desim.kernel import WaitEvent


class ChannelClosed(Exception):
    """Raised when getting from a closed, drained channel."""


class Fifo:
    """Bounded FIFO channel with blocking put/get and back-pressure.

    ``capacity=None`` gives an unbounded FIFO (no back-pressure), which the
    E4/E5 benches use as the "no back-pressure" ablation: without a bound,
    an overrunning producer silently grows the buffer instead of blocking,
    and with a *bounded but non-blocking* write (see :meth:`put_nowait` with
    ``overwrite=True``) it corrupts data exactly as the paper describes for
    time-triggered systems.
    """

    def __init__(self, capacity: Optional[int] = None, name: str = "fifo") -> None:
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.name = name
        self.capacity = capacity
        self._items: Deque[Any] = deque()
        self._not_empty = Event(f"{name}.not_empty")
        self._not_full = Event(f"{name}.not_full")
        self.closed = False
        self.total_puts = 0
        self.total_gets = 0
        self.overwrites = 0
        self.max_occupancy = 0

    def __len__(self) -> int:
        return len(self._items)

    @property
    def full(self) -> bool:
        return self.capacity is not None and len(self._items) >= self.capacity

    @property
    def empty(self) -> bool:
        return not self._items

    # ------------------------------------------------------------------
    # blocking (process) interface
    # ------------------------------------------------------------------
    def put(self, item: Any) -> Generator[Any, Any, None]:
        """Blocking put; blocks while the FIFO is full (back-pressure)."""
        while self.full:
            yield WaitEvent(self._not_full)
        self._enqueue(item)

    def get(self) -> Generator[Any, Any, Any]:
        """Blocking get; blocks while the FIFO is empty."""
        while self.empty:
            if self.closed:
                raise ChannelClosed(self.name)
            yield WaitEvent(self._not_empty)
        return self._dequeue()

    def peek(self) -> Generator[Any, Any, Any]:
        """Block until non-empty, then return the head without removing it."""
        while self.empty:
            if self.closed:
                raise ChannelClosed(self.name)
            yield WaitEvent(self._not_empty)
        return self._items[0]

    # ------------------------------------------------------------------
    # non-blocking interface
    # ------------------------------------------------------------------
    def put_nowait(self, item: Any, overwrite: bool = False) -> bool:
        """Non-blocking put.

        When full: with ``overwrite=True`` the oldest item is *overwritten*
        (data corruption, counted in :attr:`overwrites`); otherwise the put
        fails and returns False.
        """
        if self.full:
            if not overwrite:
                return False
            self._items.popleft()
            self.overwrites += 1
        self._enqueue(item)
        return True

    def get_nowait(self) -> Any:
        """Non-blocking get; raises IndexError when empty."""
        if self.empty:
            raise IndexError(f"fifo {self.name!r} is empty")
        return self._dequeue()

    def close(self) -> None:
        """Close the channel; blocked getters see ChannelClosed when drained."""
        self.closed = True
        self._not_empty.trigger(None)

    # ------------------------------------------------------------------
    @property
    def not_empty_event(self) -> Event:
        return self._not_empty

    @property
    def not_full_event(self) -> Event:
        return self._not_full

    def _enqueue(self, item: Any) -> None:
        if self.closed:
            raise ChannelClosed(f"put on closed fifo {self.name!r}")
        self._items.append(item)
        self.total_puts += 1
        self.max_occupancy = max(self.max_occupancy, len(self._items))
        self._not_empty.trigger(None)

    def _dequeue(self) -> Any:
        item = self._items.popleft()
        self.total_gets += 1
        self._not_full.trigger(None)
        return item

    def __repr__(self) -> str:
        cap = "inf" if self.capacity is None else self.capacity
        return f"Fifo({self.name!r}, {len(self._items)}/{cap})"


class Mailbox:
    """Unbounded asynchronous message queue with sender identification.

    This is the messaging primitive of the section-II programming model:
    sends never block (asynchronous messages); receives block until a
    message is available.
    """

    def __init__(self, name: str = "mailbox") -> None:
        self.name = name
        self._messages: Deque[Any] = deque()
        self._arrived = Event(f"{name}.arrived")
        self.total_sent = 0
        self.total_received = 0

    def __len__(self) -> int:
        return len(self._messages)

    def send(self, message: Any, sender: Optional[str] = None) -> None:
        """Asynchronous, never-blocking send."""
        self._messages.append((sender, message))
        self.total_sent += 1
        self._arrived.trigger(None)

    def receive(self) -> Generator[Any, Any, Any]:
        """Blocking receive; returns ``(sender, message)``."""
        while not self._messages:
            yield WaitEvent(self._arrived)
        self.total_received += 1
        return self._messages.popleft()

    def receive_nowait(self) -> Any:
        if not self._messages:
            raise IndexError(f"mailbox {self.name!r} is empty")
        self.total_received += 1
        return self._messages.popleft()

    @property
    def arrived_event(self) -> Event:
        return self._arrived

    def __repr__(self) -> str:
        return f"Mailbox({self.name!r}, pending={len(self._messages)})"


def drain(fifo: Fifo) -> List[Any]:
    """Remove and return all items currently in a FIFO (test helper)."""
    items = []
    while not fifo.empty:
        items.append(fifo.get_nowait())
    return items


__all__ = ["ChannelClosed", "Fifo", "Mailbox", "drain"]
