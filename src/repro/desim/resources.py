"""Shared-resource primitives: counting resources and mutexes.

These model the *shared platform resources* the paper's debugging section
warns about (semaphores, memory controllers, DMAs shared across software
stacks).  Acquisition order is FIFO and deterministic.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Generator, List, Optional

from repro.desim.events import Event
from repro.desim.kernel import WaitEvent


class Resource:
    """Counting resource with FIFO granting.

    Usage from process code::

        yield from resource.acquire()
        ...critical work...
        resource.release()
    """

    def __init__(self, capacity: int = 1, name: str = "resource") -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.name = name
        self.capacity = capacity
        self.in_use = 0
        self._released = Event(f"{name}.released")
        self._wait_queue: Deque[int] = deque()
        self._next_ticket = 0
        self.total_acquisitions = 0
        self.contention_count = 0

    @property
    def available(self) -> int:
        return self.capacity - self.in_use

    def acquire(self) -> Generator[Any, Any, None]:
        """Block until a unit is available, honouring FIFO order.

        Cancellation-safe: a waiter that dies mid-wait (killed,
        interrupted, or failed) removes its ticket on the way out, so
        the queue never blocks forever on a ghost entry.
        """
        ticket = self._next_ticket
        self._next_ticket += 1
        self._wait_queue.append(ticket)
        acquired = False
        if self.in_use >= self.capacity or self._wait_queue[0] != ticket:
            self.contention_count += 1
        try:
            while self.in_use >= self.capacity or \
                    self._wait_queue[0] != ticket:
                yield WaitEvent(self._released)
            self._wait_queue.popleft()
            acquired = True
        finally:
            if not acquired:
                was_head = bool(self._wait_queue) and \
                    self._wait_queue[0] == ticket
                try:
                    self._wait_queue.remove(ticket)
                except ValueError:
                    pass
                # A dead head waiter may have been the only thing keeping
                # the next ticket blocked.
                if was_head and self._wait_queue and \
                        self.in_use < self.capacity:
                    self._released.trigger(None)
        self.in_use += 1
        self.total_acquisitions += 1
        # Wake the next ticket only when it can actually be admitted now
        # (capacity > 1); waking it just to re-block is a wakeup storm.
        if self._wait_queue and self.in_use < self.capacity:
            self._released.trigger(None)

    def try_acquire(self) -> bool:
        """Non-blocking acquire; only succeeds when nobody is queued."""
        if self.in_use < self.capacity and not self._wait_queue:
            self.in_use += 1
            self.total_acquisitions += 1
            return True
        return False

    def release(self) -> None:
        if self.in_use <= 0:
            raise RuntimeError(f"release of idle resource {self.name!r}")
        self.in_use -= 1
        if self._wait_queue:
            self._released.trigger(None)

    def __repr__(self) -> str:
        return f"Resource({self.name!r}, {self.in_use}/{self.capacity})"


class PriorityResource:
    """A serial resource granting by (priority, FIFO ticket).

    Lower priority number = more urgent.  This is the dispatcher primitive
    behind MVP's "scheduled dynamically according to their priority in
    best effort manner" (paper section IV): a waiting high-priority task
    is granted before earlier-queued low-priority ones (non-preemptive).
    """

    def __init__(self, name: str = "prio") -> None:
        self.name = name
        self.busy = False
        self._released = Event(f"{name}.released")
        self._queue: List[tuple] = []  # (priority, ticket)
        self._next_ticket = 0
        self.total_acquisitions = 0

    def acquire(self, priority: int = 10) -> Generator[Any, Any, None]:
        """Block until granted; cancellation-safe like
        :meth:`Resource.acquire`."""
        ticket = self._next_ticket
        self._next_ticket += 1
        entry = (priority, ticket)
        self._queue.append(entry)
        self._queue.sort()
        acquired = False
        try:
            while self.busy or self._queue[0] != entry:
                yield WaitEvent(self._released)
            self._queue.pop(0)
            acquired = True
        finally:
            if not acquired:
                was_head = bool(self._queue) and self._queue[0] == entry
                try:
                    self._queue.remove(entry)
                except ValueError:
                    pass
                if was_head and self._queue and not self.busy:
                    self._released.trigger(None)
        self.busy = True
        self.total_acquisitions += 1

    def release(self) -> None:
        if not self.busy:
            raise RuntimeError(f"release of idle resource {self.name!r}")
        self.busy = False
        if self._queue:
            self._released.trigger(None)

    @property
    def waiting(self) -> int:
        return len(self._queue)


class Mutex(Resource):
    """Binary resource with owner tracking (lock-based synchronization).

    The paper (section V) notes that "the current practice of embedded
    software design is multithreaded programming with lock-based
    synchronization" and that debugging it is extremely difficult; the
    mutex records its acquisition history so benches can quantify contention.
    """

    def __init__(self, name: str = "mutex") -> None:
        super().__init__(capacity=1, name=name)
        self.owner: Optional[str] = None

    def lock(self, owner: str = "?") -> Generator[Any, Any, None]:
        yield from self.acquire()
        self.owner = owner

    def unlock(self) -> None:
        self.owner = None
        self.release()


__all__ = ["Mutex", "PriorityResource", "Resource"]
