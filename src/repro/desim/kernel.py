"""The discrete-event simulator core.

Processes are generators that yield scheduling requests:

- ``yield Delay(t)`` -- resume after ``t`` time units;
- ``yield WaitEvent(event)`` -- resume when the event triggers (the trigger
  payload becomes the value of the yield expression);
- ``yield WaitProcess(proc)`` -- resume when another process terminates.

The kernel is deterministic: simultaneous wakeups execute in (priority,
sequence-number) order, and event triggers resume waiters in registration
order.  Determinism is essential for the paper's section-VII argument that a
virtual platform reproduces concurrency bugs reliably.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable, Generator, List, Optional

from repro.desim.events import Event


class Interrupted(Exception):
    """Raised inside a process that was interrupted via Process.interrupt."""

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class ProcessFailed(Exception):
    """Thrown into waiters of a process that terminated with an error.

    A ``WaitProcess`` (or a wait on ``proc.done``) whose target dies from an
    uncaught exception receives this instead of a silent ``None`` payload,
    so failures propagate along wait chains rather than vanishing.
    """

    def __init__(self, process: "Process", error: BaseException) -> None:
        super().__init__(f"process {process.name!r} failed: {error!r}")
        self.process = process
        self.error = error


class SimObserver:
    """Observer interface for kernel-level instrumentation.

    Subclass and override any subset; the kernel invokes observers only
    when at least one is installed, so an un-observed :class:`Simulator`
    pays a single truthiness check per event and stays dependency-free.
    """

    def on_schedule(self, sim: "Simulator", item: "_ScheduledItem") -> None:
        """A callback was pushed onto the event queue."""

    def on_execute(self, sim: "Simulator", item: "_ScheduledItem") -> None:
        """A queued callback just ran (``sim.now`` is its time)."""

    def on_process_resume(self, sim: "Simulator", proc: "Process") -> None:
        """A process is about to advance by one yield."""

    def on_process_yield(self, sim: "Simulator", proc: "Process",
                         request: Any) -> None:
        """A process yielded ``request`` (Delay/WaitEvent/...)."""

    def on_process_finish(self, sim: "Simulator", proc: "Process") -> None:
        """A process terminated (``proc.error`` set on failure)."""


@dataclass(frozen=True)
class Delay:
    """Scheduling request: resume the process after ``duration`` time units."""

    duration: float

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise ValueError(f"negative delay: {self.duration}")


@dataclass(frozen=True)
class WaitEvent:
    """Scheduling request: resume when ``event`` triggers."""

    event: Event


@dataclass(frozen=True)
class WaitProcess:
    """Scheduling request: resume when ``process`` terminates."""

    process: "Process"


ProcessBody = Generator[Any, Any, Any]


class Process:
    """A simulation process wrapping a generator.

    The process lifecycle is: created -> running/waiting -> terminated.  On
    termination (normal return or exception) the :attr:`done` event fires
    with the return value; ``WaitProcess`` waiters receive it.
    """

    _next_id = 0

    def __init__(self, sim: "Simulator", body: ProcessBody, name: str = "",
                 priority: int = 0) -> None:
        Process._next_id += 1
        self.pid = Process._next_id
        self.sim = sim
        self.body = body
        self.name = name or f"proc{self.pid}"
        self.priority = priority
        self.alive = True
        self.result: Any = None
        self.error: Optional[BaseException] = None
        self.done = Event(f"{self.name}.done")
        self._pending_interrupt: Optional[Interrupted] = None
        self._waiting_on: Optional[Event] = None
        self._resume_handle: Optional[Callable[[Any], None]] = None
        # Re-arm fast path: the dominant scheduling pattern is a process
        # resuming itself (Delay / event payload).  Instead of allocating
        # a fresh closure + _ScheduledItem per resume, the kernel recycles
        # this per-process record whenever it is not already in the heap.
        self._rearm_item: Optional["_ScheduledItem"] = None
        self._rearm_busy = False
        self._rearm_value: Any = None
        self._rearm_epoch = 0
        self._rearm_action = self._run_rearm  # bind once, reuse forever
        # Resume epoch: every actual resume bumps it, and every scheduled
        # resume carries the epoch it was issued for.  A stale wakeup
        # (e.g. the original timer of an interrupted Delay) then no longer
        # matches and is discarded instead of double-resuming the process.
        self._epoch = 0

    def interrupt(self, cause: Any = None) -> None:
        """Schedule an :class:`Interrupted` to be thrown into the process.

        If the process is currently waiting, it is detached from its wait
        and resumed immediately (at the current simulation time).
        """
        if not self.alive:
            return
        self._pending_interrupt = Interrupted(cause)
        if self._waiting_on is not None and self._resume_handle is not None:
            self._waiting_on.remove_waiter(self._resume_handle)
            self._waiting_on = None
            self._resume_handle = None
            self.sim._schedule_resume(self, None)
        # A process waiting on a Delay is resumed when its timer fires; the
        # interrupt is delivered then.  For prompt delivery the kernel also
        # schedules an immediate resume:
        elif self._resume_handle is None:
            self.sim._schedule_resume(self, None)

    def _run_rearm(self) -> None:
        """Heap action of the recycled resume record (see _rearm_item)."""
        self._rearm_busy = False
        self.sim._step(self, self._rearm_value, self._rearm_epoch)

    def __repr__(self) -> str:
        state = "alive" if self.alive else "done"
        return f"Process({self.name!r}, pid={self.pid}, {state})"


@dataclass(order=True)
class _ScheduledItem:
    time: float
    priority: int
    seq: int
    action: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    # Set once the item has been popped for execution, so a late cancel()
    # cannot corrupt the simulator's live pending counter.
    consumed: bool = field(default=False, compare=False)


class Simulator:
    """Deterministic discrete-event simulator.

    Time is a monotonically non-decreasing float (integers work too and are
    used as cycle counts by the virtual platform).
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._queue: List[_ScheduledItem] = []
        self._seq = 0
        self._running = False
        self.processes: List[Process] = []
        self.event_count = 0
        # Live count of queued, non-cancelled items (pending is O(1)).
        self._pending_count = 0
        self._observers: List[SimObserver] = []

    # ------------------------------------------------------------------
    # observers
    # ------------------------------------------------------------------
    def add_observer(self, observer: SimObserver) -> SimObserver:
        """Install a :class:`SimObserver`; returns it for chaining."""
        self._observers.append(observer)
        return observer

    def remove_observer(self, observer: SimObserver) -> None:
        self._observers.remove(observer)

    @property
    def has_observers(self) -> bool:
        """True when kernel instrumentation is installed.  The ISS fast
        path polls this: observers must see the per-instruction event
        stream, so batching is disabled while any are attached."""
        return bool(self._observers)

    # ------------------------------------------------------------------
    # scheduling primitives
    # ------------------------------------------------------------------
    def at(self, time: float, action: Callable[[], None],
           priority: int = 0) -> _ScheduledItem:
        """Schedule a bare callback at an absolute time."""
        if time < self.now:
            raise ValueError(f"cannot schedule in the past: {time} < {self.now}")
        self._seq += 1
        item = _ScheduledItem(time, priority, self._seq, action)
        heapq.heappush(self._queue, item)
        self._pending_count += 1
        if self._observers:
            for observer in self._observers:
                observer.on_schedule(self, item)
        return item

    def after(self, delay: float, action: Callable[[], None],
              priority: int = 0) -> _ScheduledItem:
        """Schedule a bare callback after a relative delay."""
        return self.at(self.now + delay, action, priority)

    def cancel(self, item: _ScheduledItem) -> None:
        if item.cancelled or item.consumed:
            return
        item.cancelled = True
        self._pending_count -= 1

    # ------------------------------------------------------------------
    # processes
    # ------------------------------------------------------------------
    def spawn(self, body: ProcessBody, name: str = "",
              priority: int = 0, start_delay: float = 0.0) -> Process:
        """Create a process from a generator and schedule its first step."""
        proc = Process(self, body, name=name, priority=priority)
        self.processes.append(proc)
        self._schedule_resume(proc, None, delay=start_delay)
        return proc

    def _schedule_resume(self, proc: Process, value: Any,
                         delay: float = 0.0) -> None:
        expected = proc._epoch
        if delay >= 0 and not proc._rearm_busy:
            # Cheap re-arm: recycle the process's resume record instead of
            # allocating a closure + heap item per event.  Safe because
            # internal resume items are never cancelled, so a busy record
            # is guaranteed to be popped (and released) by the main loop
            # before it can be reused.  A second concurrent resume (e.g.
            # interrupt() racing a Delay timer) falls back to `at()`.
            proc._rearm_value = value
            proc._rearm_epoch = expected
            proc._rearm_busy = True
            self._seq += 1
            item = proc._rearm_item
            if item is None:
                item = _ScheduledItem(self.now + delay, proc.priority,
                                      self._seq, proc._rearm_action)
                proc._rearm_item = item
            else:
                item.time = self.now + delay
                item.priority = proc.priority
                item.seq = self._seq
                item.cancelled = False
                item.consumed = False
            heapq.heappush(self._queue, item)
            self._pending_count += 1
            if self._observers:
                for observer in self._observers:
                    observer.on_schedule(self, item)
            return
        self.at(self.now + delay,
                lambda: self._step(proc, value, expected),
                priority=proc.priority)

    def _step(self, proc: Process, value: Any,
              expected_epoch: Optional[int] = None) -> None:
        """Advance a process by one yield."""
        if not proc.alive:
            return
        if expected_epoch is not None and proc._epoch != expected_epoch:
            return  # stale wakeup (process was interrupted meanwhile)
        proc._epoch += 1
        proc._waiting_on = None
        proc._resume_handle = None
        if self._observers:
            for observer in self._observers:
                observer.on_process_resume(self, proc)
        try:
            if proc._pending_interrupt is not None:
                exc = proc._pending_interrupt
                proc._pending_interrupt = None
                request = proc.body.throw(exc)
            elif isinstance(value, ProcessFailed):
                # The process we waited on died: re-throw its failure here.
                request = proc.body.throw(value)
            else:
                request = proc.body.send(value)
        except StopIteration as stop:
            self._finish(proc, result=stop.value)
            return
        except Interrupted:
            self._finish(proc, result=None)
            return
        except BaseException as error:  # noqa: BLE001 - surfaced to waiters
            self._finish(proc, error=error)
            return
        if self._observers:
            for observer in self._observers:
                observer.on_process_yield(self, proc, request)
        self._dispatch_request(proc, request)

    def _dispatch_request(self, proc: Process, request: Any) -> None:
        if isinstance(request, Delay):
            self._schedule_resume(proc, None, delay=request.duration)
        elif isinstance(request, WaitEvent):
            self._wait_on_event(proc, request.event)
        elif isinstance(request, WaitProcess):
            target = request.process
            if not target.alive:
                if target.error is not None:
                    self._schedule_resume(
                        proc, ProcessFailed(target, target.error))
                else:
                    self._schedule_resume(proc, target.result)
            else:
                self._wait_on_event(proc, target.done)
        elif isinstance(request, Event):
            # Convenience: yielding a bare Event waits on it.
            self._wait_on_event(proc, request)
        else:
            raise TypeError(
                f"process {proc.name!r} yielded unsupported request "
                f"{request!r}; expected Delay/WaitEvent/WaitProcess/Event")

    def _wait_on_event(self, proc: Process, event: Event) -> None:
        def resume(payload: Any) -> None:
            self._schedule_resume(proc, payload)

        proc._waiting_on = event
        proc._resume_handle = resume
        event.add_waiter(resume)

    def _finish(self, proc: Process, result: Any = None,
                error: Optional[BaseException] = None) -> None:
        proc.alive = False
        proc.result = result
        proc.error = error
        if self._observers:
            for observer in self._observers:
                observer.on_process_finish(self, proc)
        if error is not None:
            # Waiters receive a ProcessFailed payload (thrown into them on
            # resume) instead of a silent None, then the error surfaces out
            # of run()/step() for the caller.
            proc.done.trigger(ProcessFailed(proc, error))
            raise error
        proc.done.trigger(result)

    def kill(self, proc: Process) -> None:
        """Terminate a process without delivering an exception into it."""
        if proc.alive:
            if proc._waiting_on is not None and proc._resume_handle is not None:
                proc._waiting_on.remove_waiter(proc._resume_handle)
            proc.alive = False
            proc.body.close()
            proc.done.trigger(None)

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> float:
        """Run until the queue drains, ``until`` is reached, or the event
        budget is exhausted.  Returns the final simulation time.

        If a process dies with an uncaught exception it is re-raised here,
        with ``_running`` reset so the simulator stays usable: the caller
        can catch the error and ``run()`` again to let ``WaitProcess``
        waiters observe the :class:`ProcessFailed` payload.
        """
        self._running = True
        budget = max_events
        try:
            while self._queue and self._running:
                item = self._queue[0]
                if item.cancelled:
                    heapq.heappop(self._queue)
                    continue
                if until is not None and item.time > until:
                    self.now = until
                    break
                heapq.heappop(self._queue)
                item.consumed = True
                self._pending_count -= 1
                self.now = item.time
                self.event_count += 1
                item.action()
                if self._observers:
                    for observer in self._observers:
                        observer.on_execute(self, item)
                if budget is not None:
                    budget -= 1
                    if budget <= 0:
                        break
            else:
                drained = not self._queue
                if drained and self._running and until is not None \
                        and self.now < until:
                    self.now = until
        finally:
            self._running = False
        return self.now

    def step(self) -> bool:
        """Execute exactly one queued action.  Returns False if queue empty.

        This is the hook the virtual-platform debugger uses for synchronous
        system suspension: between two ``step`` calls the *entire* platform
        is frozen and can be inspected consistently (paper section VII).
        """
        while self._queue:
            item = heapq.heappop(self._queue)
            if item.cancelled:
                continue
            item.consumed = True
            self._pending_count -= 1
            self.now = item.time
            self.event_count += 1
            item.action()
            if self._observers:
                for observer in self._observers:
                    observer.on_execute(self, item)
            return True
        return False

    def stop(self) -> None:
        """Stop the run loop after the current action returns."""
        self._running = False

    @property
    def pending(self) -> int:
        """Number of queued, non-cancelled actions.  O(1): backed by a live
        counter (the debugger polls this between every kernel event)."""
        return self._pending_count

    def peek_time(self) -> Optional[float]:
        """Time of the next non-cancelled action, or None.

        Lazily discards cancelled items from the heap top instead of
        sorting the whole queue.
        """
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        return self._queue[0].time if self._queue else None


__all__ = ["Delay", "Interrupted", "Process", "ProcessFailed", "SimObserver",
           "Simulator", "WaitEvent", "WaitProcess"]
