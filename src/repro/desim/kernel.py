"""The discrete-event simulator core.

Processes are generators that yield scheduling requests:

- ``yield Delay(t)`` -- resume after ``t`` time units;
- ``yield WaitEvent(event)`` -- resume when the event triggers (the trigger
  payload becomes the value of the yield expression);
- ``yield WaitProcess(proc)`` -- resume when another process terminates.

The kernel is deterministic: simultaneous wakeups execute in (priority,
sequence-number) order, and event triggers resume waiters in registration
order.  Determinism is essential for the paper's section-VII argument that a
virtual platform reproduces concurrency bugs reliably.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable, Generator, List, Optional

from repro.desim.events import Event


class Interrupted(Exception):
    """Raised inside a process that was interrupted via Process.interrupt."""

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


@dataclass(frozen=True)
class Delay:
    """Scheduling request: resume the process after ``duration`` time units."""

    duration: float

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise ValueError(f"negative delay: {self.duration}")


@dataclass(frozen=True)
class WaitEvent:
    """Scheduling request: resume when ``event`` triggers."""

    event: Event


@dataclass(frozen=True)
class WaitProcess:
    """Scheduling request: resume when ``process`` terminates."""

    process: "Process"


ProcessBody = Generator[Any, Any, Any]


class Process:
    """A simulation process wrapping a generator.

    The process lifecycle is: created -> running/waiting -> terminated.  On
    termination (normal return or exception) the :attr:`done` event fires
    with the return value; ``WaitProcess`` waiters receive it.
    """

    _next_id = 0

    def __init__(self, sim: "Simulator", body: ProcessBody, name: str = "",
                 priority: int = 0) -> None:
        Process._next_id += 1
        self.pid = Process._next_id
        self.sim = sim
        self.body = body
        self.name = name or f"proc{self.pid}"
        self.priority = priority
        self.alive = True
        self.result: Any = None
        self.error: Optional[BaseException] = None
        self.done = Event(f"{self.name}.done")
        self._pending_interrupt: Optional[Interrupted] = None
        self._waiting_on: Optional[Event] = None
        self._resume_handle: Optional[Callable[[Any], None]] = None
        # Resume epoch: every actual resume bumps it, and every scheduled
        # resume carries the epoch it was issued for.  A stale wakeup
        # (e.g. the original timer of an interrupted Delay) then no longer
        # matches and is discarded instead of double-resuming the process.
        self._epoch = 0

    def interrupt(self, cause: Any = None) -> None:
        """Schedule an :class:`Interrupted` to be thrown into the process.

        If the process is currently waiting, it is detached from its wait
        and resumed immediately (at the current simulation time).
        """
        if not self.alive:
            return
        self._pending_interrupt = Interrupted(cause)
        if self._waiting_on is not None and self._resume_handle is not None:
            self._waiting_on.remove_waiter(self._resume_handle)
            self._waiting_on = None
            self._resume_handle = None
            self.sim._schedule_resume(self, None)
        # A process waiting on a Delay is resumed when its timer fires; the
        # interrupt is delivered then.  For prompt delivery the kernel also
        # schedules an immediate resume:
        elif self._resume_handle is None:
            self.sim._schedule_resume(self, None)

    def __repr__(self) -> str:
        state = "alive" if self.alive else "done"
        return f"Process({self.name!r}, pid={self.pid}, {state})"


@dataclass(order=True)
class _ScheduledItem:
    time: float
    priority: int
    seq: int
    action: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class Simulator:
    """Deterministic discrete-event simulator.

    Time is a monotonically non-decreasing float (integers work too and are
    used as cycle counts by the virtual platform).
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._queue: List[_ScheduledItem] = []
        self._seq = 0
        self._running = False
        self.processes: List[Process] = []
        self.event_count = 0

    # ------------------------------------------------------------------
    # scheduling primitives
    # ------------------------------------------------------------------
    def at(self, time: float, action: Callable[[], None],
           priority: int = 0) -> _ScheduledItem:
        """Schedule a bare callback at an absolute time."""
        if time < self.now:
            raise ValueError(f"cannot schedule in the past: {time} < {self.now}")
        self._seq += 1
        item = _ScheduledItem(time, priority, self._seq, action)
        heapq.heappush(self._queue, item)
        return item

    def after(self, delay: float, action: Callable[[], None],
              priority: int = 0) -> _ScheduledItem:
        """Schedule a bare callback after a relative delay."""
        return self.at(self.now + delay, action, priority)

    def cancel(self, item: _ScheduledItem) -> None:
        item.cancelled = True

    # ------------------------------------------------------------------
    # processes
    # ------------------------------------------------------------------
    def spawn(self, body: ProcessBody, name: str = "",
              priority: int = 0, start_delay: float = 0.0) -> Process:
        """Create a process from a generator and schedule its first step."""
        proc = Process(self, body, name=name, priority=priority)
        self.processes.append(proc)
        self._schedule_resume(proc, None, delay=start_delay)
        return proc

    def _schedule_resume(self, proc: Process, value: Any,
                         delay: float = 0.0) -> None:
        expected = proc._epoch
        self.at(self.now + delay,
                lambda: self._step(proc, value, expected),
                priority=proc.priority)

    def _step(self, proc: Process, value: Any,
              expected_epoch: Optional[int] = None) -> None:
        """Advance a process by one yield."""
        if not proc.alive:
            return
        if expected_epoch is not None and proc._epoch != expected_epoch:
            return  # stale wakeup (process was interrupted meanwhile)
        proc._epoch += 1
        proc._waiting_on = None
        proc._resume_handle = None
        try:
            if proc._pending_interrupt is not None:
                exc = proc._pending_interrupt
                proc._pending_interrupt = None
                request = proc.body.throw(exc)
            else:
                request = proc.body.send(value)
        except StopIteration as stop:
            self._finish(proc, result=stop.value)
            return
        except Interrupted:
            self._finish(proc, result=None)
            return
        except BaseException as error:  # noqa: BLE001 - surfaced to waiters
            self._finish(proc, error=error)
            return
        self._dispatch_request(proc, request)

    def _dispatch_request(self, proc: Process, request: Any) -> None:
        if isinstance(request, Delay):
            self._schedule_resume(proc, None, delay=request.duration)
        elif isinstance(request, WaitEvent):
            self._wait_on_event(proc, request.event)
        elif isinstance(request, WaitProcess):
            target = request.process
            if not target.alive:
                self._schedule_resume(proc, target.result)
            else:
                self._wait_on_event(proc, target.done)
        elif isinstance(request, Event):
            # Convenience: yielding a bare Event waits on it.
            self._wait_on_event(proc, request)
        else:
            raise TypeError(
                f"process {proc.name!r} yielded unsupported request "
                f"{request!r}; expected Delay/WaitEvent/WaitProcess/Event")

    def _wait_on_event(self, proc: Process, event: Event) -> None:
        def resume(payload: Any) -> None:
            self._schedule_resume(proc, payload)

        proc._waiting_on = event
        proc._resume_handle = resume
        event.add_waiter(resume)

    def _finish(self, proc: Process, result: Any = None,
                error: Optional[BaseException] = None) -> None:
        proc.alive = False
        proc.result = result
        proc.error = error
        proc.done.trigger(result)
        if error is not None:
            raise error

    def kill(self, proc: Process) -> None:
        """Terminate a process without delivering an exception into it."""
        if proc.alive:
            if proc._waiting_on is not None and proc._resume_handle is not None:
                proc._waiting_on.remove_waiter(proc._resume_handle)
            proc.alive = False
            proc.body.close()
            proc.done.trigger(None)

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> float:
        """Run until the queue drains, ``until`` is reached, or the event
        budget is exhausted.  Returns the final simulation time."""
        self._running = True
        budget = max_events
        while self._queue and self._running:
            item = self._queue[0]
            if item.cancelled:
                heapq.heappop(self._queue)
                continue
            if until is not None and item.time > until:
                self.now = until
                break
            heapq.heappop(self._queue)
            self.now = item.time
            self.event_count += 1
            item.action()
            if budget is not None:
                budget -= 1
                if budget <= 0:
                    break
        else:
            drained = not self._queue
            if drained and self._running and until is not None and self.now < until:
                self.now = until
        self._running = False
        return self.now

    def step(self) -> bool:
        """Execute exactly one queued action.  Returns False if queue empty.

        This is the hook the virtual-platform debugger uses for synchronous
        system suspension: between two ``step`` calls the *entire* platform
        is frozen and can be inspected consistently (paper section VII).
        """
        while self._queue:
            item = heapq.heappop(self._queue)
            if item.cancelled:
                continue
            self.now = item.time
            self.event_count += 1
            item.action()
            return True
        return False

    def stop(self) -> None:
        """Stop the run loop after the current action returns."""
        self._running = False

    @property
    def pending(self) -> int:
        return sum(1 for item in self._queue if not item.cancelled)

    def peek_time(self) -> Optional[float]:
        """Time of the next non-cancelled action, or None."""
        for item in sorted(self._queue):
            if not item.cancelled:
                return item.time
        return None


__all__ = ["Delay", "Interrupted", "Process", "Simulator", "WaitEvent",
           "WaitProcess"]
