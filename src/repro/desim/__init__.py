"""Discrete-event simulation kernel.

This is the SystemC stand-in used throughout the reproduction: the virtual
platform (:mod:`repro.vp`), the MAPS virtual platform (:mod:`repro.maps.mvp`),
the many-core OS model (:mod:`repro.manycore`) and the real-time executives
(:mod:`repro.rt`) all run on this kernel.

The kernel is process-based: simulation processes are Python generators that
``yield`` scheduling requests (:class:`Delay`, :class:`WaitEvent`, ...) back
to the :class:`Simulator`.  Execution is fully deterministic -- simultaneous
events are ordered by (time, priority, sequence number).

Example
-------
>>> from repro.desim import Simulator, Delay
>>> sim = Simulator()
>>> log = []
>>> def proc(name, period):
...     while True:
...         log.append((sim.now, name))
...         yield Delay(period)
>>> _ = sim.spawn(proc("a", 2))
>>> _ = sim.spawn(proc("b", 3))
>>> sim.run(until=6)
>>> log[:4]
[(0, 'a'), (0, 'b'), (2, 'a'), (3, 'b')]
"""

from repro.desim.events import Event, Signal
from repro.desim.kernel import (
    Delay,
    Interrupted,
    Process,
    ProcessFailed,
    SimObserver,
    Simulator,
    WaitEvent,
    WaitProcess,
)
from repro.desim.channels import ChannelClosed, Fifo, Mailbox
from repro.desim.resources import Mutex, PriorityResource, Resource
from repro.desim.watchdog import Watchdog, WatchdogTimeout, with_timeout

__all__ = [
    "ChannelClosed",
    "Delay",
    "Event",
    "Fifo",
    "Interrupted",
    "Mailbox",
    "Mutex",
    "PriorityResource",
    "Process",
    "ProcessFailed",
    "Resource",
    "SimObserver",
    "Signal",
    "Simulator",
    "WaitEvent",
    "WaitProcess",
    "Watchdog",
    "WatchdogTimeout",
    "with_timeout",
]
