"""Timeout primitives: :func:`with_timeout` and :class:`Watchdog`.

Section II demands an OS that "in a reactive way" re-allocates resources
as conditions change; reacting requires *detecting* that something
stopped responding.  These are the two detection primitives the rest of
the reproduction builds on:

- :func:`with_timeout` bounds one wait (an event, a process, a channel
  operation expressed as a generator) and raises
  :class:`WatchdogTimeout` if it does not complete in time;
- :class:`Watchdog` monitors a heartbeat: callers :meth:`~Watchdog.kick`
  it periodically, and if kicks stop for ``timeout`` simulated time
  units it *bites* (invokes its callback once).  The resilient OS
  scheduler gives every core a watchdog; a crashed or hung core stops
  kicking and the bite triggers task restart and migration.

Both are pure event-queue constructions: no polling processes, no
per-event kernel overhead when unused.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Optional, Union

from repro.desim.events import Event
from repro.desim.kernel import (Process, ProcessFailed, Simulator, WaitEvent,
                                WaitProcess)


class WatchdogTimeout(Exception):
    """Raised by :func:`with_timeout` when the wait exceeds its budget,
    and passed to a :class:`Watchdog`'s bite callback."""

    def __init__(self, name: str, timeout: float) -> None:
        super().__init__(f"{name!r} timed out after {timeout} time units")
        self.name = name
        self.timeout = timeout


_TIMED_OUT = object()  # sentinel payload of the internal race event


def with_timeout(sim: Simulator,
                 target: Union[Event, WaitEvent, WaitProcess, Process,
                               Generator],
                 timeout: float,
                 name: str = "with_timeout") -> Generator[Any, Any, Any]:
    """Wait on ``target`` for at most ``timeout`` simulated time units.

    Usage from process code::

        value = yield from with_timeout(sim, mailbox.arrived_event, 50.0)
        item = yield from with_timeout(sim, fifo.get(), 50.0)

    ``target`` may be an :class:`Event` (returns the trigger payload), a
    :class:`Process` / ``WaitProcess`` (returns the process result,
    raising :class:`ProcessFailed` if it failed), or a generator (run as
    a child process; its return value is returned, and it is killed on
    timeout).  Raises :class:`WatchdogTimeout` when the budget expires
    first.  Cancellation-safe: if the waiting process is interrupted or
    killed mid-wait, the timer and any relay waiters are cleaned up.
    """
    if timeout < 0:
        raise ValueError(f"negative timeout: {timeout}")
    race = Event(f"{name}.race")

    def relay(payload: Any) -> None:
        race.trigger(("ok", payload))

    child: Optional[Process] = None
    watched: Optional[Event] = None
    if isinstance(target, WaitEvent):
        target = target.event
    if isinstance(target, WaitProcess):
        target = target.process
    if isinstance(target, Process):
        if not target.alive:
            if target.error is not None:
                raise ProcessFailed(target, target.error)
            return target.result
        watched = target.done
    elif isinstance(target, Event):
        watched = target
    else:
        child = sim.spawn(target, name=f"{name}.body")
        watched = child.done
    watched.add_waiter(relay)
    timer = sim.after(timeout, lambda: race.trigger(_TIMED_OUT))
    try:
        payload = yield WaitEvent(race)
    finally:
        sim.cancel(timer)
        watched.remove_waiter(relay)
    if payload is _TIMED_OUT:
        if child is not None and child.alive:
            sim.kill(child)
        raise WatchdogTimeout(name, timeout)
    _, value = payload
    if isinstance(value, ProcessFailed):
        raise value
    return value


class Watchdog:
    """Heartbeat monitor: bites once if :meth:`kick` stops for ``timeout``.

    The watchdog is armed on construction (or :meth:`start`).  Any code
    path that proves liveness calls :meth:`kick`; if ``timeout``
    simulated time passes with no kick, ``on_bite(watchdog)`` runs once
    and the watchdog disarms (call :meth:`start` to re-arm).

    Implementation: kicks are O(1) timestamp writes; a single pending
    check event per watchdog re-schedules itself to the current
    deadline, so a frequently-kicked watchdog costs one kernel event
    per ``timeout`` interval, not per kick.
    """

    def __init__(self, sim: Simulator, timeout: float,
                 on_bite: Callable[["Watchdog"], None],
                 name: str = "watchdog", start: bool = True) -> None:
        if timeout <= 0:
            raise ValueError(f"watchdog timeout must be positive: {timeout}")
        self.sim = sim
        self.timeout = timeout
        self.on_bite = on_bite
        self.name = name
        self.kicks = 0
        self.bites = 0
        self.armed = False
        self._last_kick = sim.now
        self._epoch = 0  # invalidates checks scheduled by older arm cycles
        if start:
            self.start()

    def start(self) -> None:
        """Arm (or re-arm) the watchdog; the kick clock restarts now."""
        self._epoch += 1
        self.armed = True
        self._last_kick = self.sim.now
        self._schedule_check(self._last_kick + self.timeout, self._epoch)

    def kick(self) -> None:
        """Prove liveness; pushes the bite deadline to ``now + timeout``."""
        self.kicks += 1
        self._last_kick = self.sim.now

    def stop(self) -> None:
        """Disarm; a pending check becomes a no-op."""
        self.armed = False
        self._epoch += 1

    @property
    def deadline(self) -> float:
        """Sim time at which the watchdog bites absent further kicks."""
        return self._last_kick + self.timeout

    def _schedule_check(self, at: float, epoch: int) -> None:
        self.sim.at(at, lambda: self._check(epoch))

    def _check(self, epoch: int) -> None:
        if not self.armed or epoch != self._epoch:
            return
        deadline = self._last_kick + self.timeout
        if self.sim.now + 1e-12 >= deadline:
            self.bites += 1
            self.armed = False
            self._epoch += 1
            self.on_bite(self)
        else:
            self._schedule_check(deadline, epoch)

    def __repr__(self) -> str:
        state = "armed" if self.armed else "disarmed"
        return (f"Watchdog({self.name!r}, {state}, kicks={self.kicks}, "
                f"bites={self.bites})")


__all__ = ["Watchdog", "WatchdogTimeout", "with_timeout"]
