"""Data-driven executive (Hijdra-style, paper section III).

All internal stages start on the *arrival of data*: they block on their
input FIFO, compute, and block on their output FIFO when it is full
(back-pressure).  Only the source and sink are timer-triggered:

- the **source** fires every period; if its output FIFO is full the new
  sample *overwrites* the oldest one (corruption at the source boundary);
- the **sink** fires every period; if no data is available it reports a
  miss (corruption at the sink boundary).

The section-III claim this executive demonstrates: execution-time overruns
never corrupt data *inside* the application -- overruns surface only as
boundary effects at the source/sink, where "often the functionality is
robust to corruption".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.desim import Delay, Fifo, Simulator
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import TraceSink
from repro.rt.pipeline import DeliveredItem, PipelineSpec


@dataclass
class DataDrivenResult:
    """Outcome of a data-driven pipeline run."""

    delivered: List[DeliveredItem] = field(default_factory=list)
    source_drops: int = 0        # boundary corruption at the source
    sink_misses: int = 0         # boundary corruption at the sink
    out_of_order: int = 0        # internal corruption (must stay 0)
    duplicates: int = 0          # internal corruption (must stay 0)
    jobs_run: int = 0
    fifo_occupancy: Dict[str, int] = field(default_factory=dict)
    # Deadline handling (see run_data_driven's deadline_policy).
    degraded_firings: int = 0    # firings shortened while under pressure
    skipped_firings: int = 0     # firings passed through while under pressure
    deadline_policy: Optional[str] = None
    # Observability registry: per-stage firings, execution-time histograms
    # and boundary-corruption counters.
    metrics: Optional[MetricsRegistry] = None

    @property
    def internal_corruptions(self) -> int:
        return self.out_of_order + self.duplicates

    @property
    def deadline_misses(self) -> int:
        """Sink-boundary deadline misses (alias of ``sink_misses``)."""
        return self.sink_misses

    @property
    def boundary_corruptions(self) -> int:
        return self.source_drops + self.sink_misses

    @property
    def delivered_ok(self) -> int:
        return sum(1 for item in self.delivered if item.received_seq is not None)


def run_data_driven(spec: PipelineSpec, jobs: int,
                    fifo_capacity: int = 2,
                    sink: Optional[TraceSink] = None,
                    metrics: Optional[MetricsRegistry] = None,
                    deadline_policy: Optional[str] = None,
                    degrade_factor: float = 0.5) -> DataDrivenResult:
    """Execute ``jobs`` pipeline iterations under the data-driven executive.

    ``fifo_capacity`` is the per-edge buffer capacity computed at design
    time (see :mod:`repro.dataflow.buffer_sizing`); small capacities trade
    more source-boundary drops for less memory, but never internal
    corruption.

    ``deadline_policy`` reacts to sink-boundary deadline misses with a
    *pressure* flag (set on a miss, cleared on the next hit):

    - ``None`` (default): historical behaviour, misses only counted;
    - ``"degrade"``: while under pressure every firing runs a cheaper
      approximation (``execution * degrade_factor``) so the pipeline
      catches up at reduced quality;
    - ``"skip"``: while under pressure stages pass data through without
      computing (zero execution time) -- maximal load shedding.

    With a ``sink`` each stage firing becomes a span on the ``rt/<stage>``
    track and each sink miss an instant; ``metrics`` accumulates firings
    and execution-time histograms.
    """
    if deadline_policy not in (None, "skip", "degrade"):
        raise ValueError(f"unknown deadline_policy: {deadline_policy!r}")
    if not 0.0 < degrade_factor <= 1.0:
        raise ValueError(f"degrade_factor must be in (0, 1]: {degrade_factor}")
    spec.validate()
    sim = Simulator()
    metrics = metrics if metrics is not None else MetricsRegistry()
    result = DataDrivenResult(metrics=metrics, deadline_policy=deadline_policy)
    stage_count = len(spec.stages)
    fifos = [Fifo(capacity=fifo_capacity, name=f"q{k}")
             for k in range(stage_count - 1)]
    pressure = [False]  # set by a sink miss, cleared by the next hit

    def fire(stage, job: int) -> float:
        """Account one stage firing; returns its execution time."""
        execution = stage.execution_time(job)
        if pressure[0] and deadline_policy == "degrade":
            execution *= degrade_factor
            result.degraded_firings += 1
            metrics.counter("dd.degraded_firings").inc()
        elif pressure[0] and deadline_policy == "skip":
            execution = 0.0
            result.skipped_firings += 1
            metrics.counter("dd.skipped_firings").inc()
        metrics.counter(f"dd.{stage.name}.firings").inc()
        metrics.histogram(f"dd.{stage.name}.exec_time").observe(execution)
        if sink is not None:
            sink.complete(f"{stage.name}#{job}", ts=sim.now, dur=execution,
                          track=f"rt/{stage.name}")
        return execution

    def source_process():
        stage = spec.stages[0]
        for job in range(jobs):
            trigger = job * spec.period
            if trigger > sim.now:
                yield Delay(trigger - sim.now)
            yield Delay(fire(stage, job))
            if stage_count == 1:
                result.delivered.append(DeliveredItem(job, job, sim.now))
                continue
            accepted = fifos[0].put_nowait(job, overwrite=True)
            if not accepted or fifos[0].overwrites:
                pass  # overwrite counting handled below via fifo stats
        result.jobs_run = jobs

    def worker_process(stage_index: int):
        stage = spec.stages[stage_index]
        inbox = fifos[stage_index - 1]
        outbox = fifos[stage_index] if stage_index < stage_count - 1 else None
        job = 0
        expected_min = -1
        while True:
            value = yield from inbox.get()
            if value <= expected_min:
                result.duplicates += 1
            elif value < expected_min:
                result.out_of_order += 1
            expected_min = max(expected_min, value)
            yield Delay(fire(stage, job))
            job += 1
            if outbox is not None:
                yield from outbox.put(value)  # blocking: back-pressure
            else:
                raise AssertionError("last worker must be the sink")

    def sink_process():
        stage = spec.stages[-1]
        inbox = fifos[-1]
        # Steady-state latency from the WCET estimates, plus a tiny slack
        # so an exactly-on-time arrival beats the sink's trigger (mirrors
        # the time-triggered executive's schedule slack).
        latency = sum(s.wcet_estimate for s in spec.stages[:-1]) \
            + spec.period * 1e-6 * len(spec.stages)
        job = 0
        last_seen = -1
        while job < jobs:
            trigger = job * spec.period + latency
            if trigger > sim.now:
                yield Delay(trigger - sim.now)
            if inbox.empty:
                result.sink_misses += 1
                pressure[0] = True
                metrics.counter("dd.sink_misses").inc()
                if sink is not None:
                    sink.instant("sink_miss", track=f"rt/{stage.name}",
                                 ts=sim.now, job=job,
                                 policy=deadline_policy)
                result.delivered.append(DeliveredItem(job, None, sim.now))
            else:
                value = inbox.get_nowait()
                if value <= last_seen:
                    result.duplicates += 1
                last_seen = value
                yield Delay(fire(stage, job))
                pressure[0] = False
                result.delivered.append(DeliveredItem(job, value, sim.now))
            job += 1

    sim.spawn(source_process(), name=spec.stages[0].name)
    for index in range(1, stage_count - 1):
        sim.spawn(worker_process(index), name=spec.stages[index].name)
    if stage_count > 1:
        sim.spawn(sink_process(), name=spec.stages[-1].name)
    sim.run()

    result.source_drops = fifos[0].overwrites if fifos else 0
    result.fifo_occupancy = {f.name: f.max_occupancy for f in fifos}
    metrics.counter("dd.source_drops").inc(result.source_drops)
    for fifo in fifos:
        metrics.gauge(f"dd.fifo.{fifo.name}.max_occupancy").set(
            fifo.max_occupancy)
    # Kill any still-blocked workers (drained pipeline).
    return result


__all__ = ["DataDrivenResult", "run_data_driven"]
