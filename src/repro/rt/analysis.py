"""Classical schedulability analyses for periodic task sets.

The section-II position calls for "a predictable approach ... that can meet
application dead-line requirements"; these are the standard design-time
tests such an OS would run before admitting tasks.
"""

from __future__ import annotations

import math
from typing import Dict, Optional

from repro.rt.tasks import TaskSet


def rate_monotonic_bound(n: int) -> float:
    """Liu & Layland utilization bound for n tasks: n(2^(1/n) - 1)."""
    if n <= 0:
        raise ValueError("n must be positive")
    return n * (2 ** (1 / n) - 1)


def edf_schedulable(task_set: TaskSet) -> bool:
    """EDF on one processor: schedulable iff utilization <= 1 (implicit
    deadlines)."""
    implicit = all(task.deadline == task.period for task in task_set)
    if not implicit:
        # Density test (sufficient, not necessary) for constrained deadlines.
        density = sum(task.wcet / min(task.deadline, task.period)
                      for task in task_set)
        return density <= 1.0 + 1e-12
    return task_set.utilization <= 1.0 + 1e-12


def response_time_analysis(task_set: TaskSet,
                           max_iterations: int = 10_000) -> Dict[str, Optional[float]]:
    """Exact fixed-priority response-time analysis (single processor).

    Returns each task's worst-case response time, or ``None`` when the
    recurrence diverges past the deadline (unschedulable task).
    Priority order: explicit priorities if given, else rate-monotonic.
    """
    ordered = task_set.by_priority()
    results: Dict[str, Optional[float]] = {}
    for index, task in enumerate(ordered):
        higher = ordered[:index]
        response = task.wcet
        for _ in range(max_iterations):
            interference = sum(
                math.ceil(response / other.period) * other.wcet
                for other in higher)
            updated = task.wcet + interference
            if updated > task.deadline:
                response = None  # type: ignore[assignment]
                break
            if abs(updated - response) < 1e-12:
                response = updated
                break
            response = updated
        results[task.name] = response
    return results


def fixed_priority_schedulable(task_set: TaskSet) -> bool:
    """True when every task's worst-case response time meets its deadline."""
    responses = response_time_analysis(task_set)
    return all(response is not None for response in responses.values())


__all__ = ["edf_schedulable", "fixed_priority_schedulable",
           "rate_monotonic_bound", "response_time_analysis"]
