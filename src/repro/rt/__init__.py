"""Real-time task models and executives (paper section III).

The NXP Hijdra position is that *data-driven* execution puts fewer
constraints on application software than *time-triggered* execution: when a
task overruns an unreliable worst-case execution-time estimate, a
time-triggered system corrupts data **inside** the application (a buffer is
overwritten, or the same data is read again), while a data-driven system
with back-pressure only ever corrupts data at the periodic **source and
sink** boundary -- where applications are typically robust.

This package provides:

- :mod:`repro.rt.tasks` -- periodic task sets, utilization, hyperperiods;
- :mod:`repro.rt.analysis` -- fixed-priority response-time analysis and
  EDF / rate-monotonic schedulability tests;
- :mod:`repro.rt.pipeline` -- the stream-pipeline application model shared
  by both executives;
- :mod:`repro.rt.time_triggered` -- a Kopetz-style time-triggered executive
  driven by a design-time periodic schedule;
- :mod:`repro.rt.data_driven` -- a Hijdra-style data-driven executive with
  back-pressured FIFOs and timer-triggered source/sink.
"""

from repro.rt.tasks import PeriodicTask, TaskSet, hyperperiod
from repro.rt.analysis import (
    edf_schedulable,
    rate_monotonic_bound,
    response_time_analysis,
)
from repro.rt.pipeline import PipelineSpec, StageSpec, make_jitter_fn
from repro.rt.time_triggered import TimeTriggeredResult, run_time_triggered
from repro.rt.data_driven import DataDrivenResult, run_data_driven

__all__ = [
    "DataDrivenResult", "PeriodicTask", "PipelineSpec", "StageSpec",
    "TaskSet", "TimeTriggeredResult", "edf_schedulable", "hyperperiod",
    "make_jitter_fn", "rate_monotonic_bound", "response_time_analysis",
    "run_data_driven", "run_time_triggered",
]
