"""The stream-pipeline application model shared by both executives.

A pipeline is a chain of stages (car-radio style: sample -> filter ->
decode -> postprocess -> DAC).  The source produces item ``j`` carrying the
payload ``j``; every stage applies the identity transformation, so any
duplicate, loss, or tearing introduced by the *executive* is directly
observable at the sink.  Stages declare a WCET **estimate**; actual
execution times come from ``exec_time_fn`` and may exceed the estimate --
that is precisely the "unreliable worst-case execution time estimate" whose
consequences section III analyses.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, List, Optional


@dataclass
class StageSpec:
    """One pipeline stage running on its own processing element."""

    name: str
    wcet_estimate: float
    exec_time_fn: Optional[Callable[[int], float]] = None

    def execution_time(self, job_index: int) -> float:
        if self.exec_time_fn is not None:
            return float(self.exec_time_fn(job_index))
        return self.wcet_estimate


@dataclass
class PipelineSpec:
    """A source-to-sink pipeline with a common period."""

    period: float
    stages: List[StageSpec] = field(default_factory=list)
    name: str = "pipeline"

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise ValueError("period must be positive")

    def add_stage(self, name: str, wcet_estimate: float,
                  exec_time_fn: Optional[Callable[[int], float]] = None) -> StageSpec:
        stage = StageSpec(name, wcet_estimate, exec_time_fn)
        self.stages.append(stage)
        return stage

    @property
    def stage_names(self) -> List[str]:
        return [stage.name for stage in self.stages]

    def validate(self) -> None:
        if len(self.stages) < 1:
            raise ValueError("pipeline needs at least one stage")
        seen = set()
        for stage in self.stages:
            if stage.name in seen:
                raise ValueError(f"duplicate stage name {stage.name!r}")
            seen.add(stage.name)


def make_jitter_fn(wcet_estimate: float, overrun_probability: float,
                   overrun_factor: float = 1.5, seed: int = 0,
                   jitter: float = 0.1) -> Callable[[int], float]:
    """Deterministic pseudo-random execution-time generator.

    With probability ``overrun_probability`` a job takes
    ``wcet_estimate * overrun_factor`` (the estimate was unreliable);
    otherwise it takes a uniform draw in
    ``[(1 - jitter) * wcet, wcet]``.  Seeded per-stage so results are
    reproducible -- an essential property for the E4 bench.
    """
    if not 0.0 <= overrun_probability <= 1.0:
        raise ValueError("overrun_probability must be in [0, 1]")
    rng = random.Random(seed)
    # Pre-drawing lazily with a cache keeps fn(j) a pure function of j.
    cache: dict = {}

    def fn(job_index: int) -> float:
        if job_index not in cache:
            # Draw in order so the sequence is reproducible regardless of
            # query order.
            next_index = len(cache)
            while next_index <= job_index:
                if rng.random() < overrun_probability:
                    value = wcet_estimate * overrun_factor
                else:
                    value = wcet_estimate * (1 - jitter * rng.random())
                cache[next_index] = value
                next_index += 1
        return cache[job_index]

    return fn


@dataclass
class DeliveredItem:
    """An item observed at the sink."""

    expected_seq: int
    received_seq: Optional[int]  # None = nothing available (miss)
    time: float

    @property
    def ok(self) -> bool:
        return self.received_seq == self.expected_seq


__all__ = ["DeliveredItem", "PipelineSpec", "StageSpec", "make_jitter_fn"]
