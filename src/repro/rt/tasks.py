"""Periodic task-set model used by the schedulability analyses and the
many-core OS benches."""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from math import gcd
from typing import Callable, List, Optional


@dataclass
class PeriodicTask:
    """A periodic real-time task.

    ``wcet`` is the *declared* worst-case execution time used by analysis;
    ``exec_time_fn(job_index)`` gives the actual execution time of each job
    and may exceed ``wcet`` (the paper's "unreliable worst-case execution
    time estimate").
    """

    name: str
    period: float
    wcet: float
    deadline: Optional[float] = None
    priority: Optional[int] = None  # lower number = higher priority
    exec_time_fn: Optional[Callable[[int], float]] = None
    parallelism: int = 1  # cores requested when space-shared (section II)
    hard: bool = True

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise ValueError(f"task {self.name!r}: period must be positive")
        if self.wcet <= 0:
            raise ValueError(f"task {self.name!r}: wcet must be positive")
        if self.deadline is None:
            self.deadline = self.period
        if self.deadline <= 0:
            raise ValueError(f"task {self.name!r}: deadline must be positive")

    @property
    def utilization(self) -> float:
        return self.wcet / self.period

    def execution_time(self, job_index: int) -> float:
        if self.exec_time_fn is not None:
            return float(self.exec_time_fn(job_index))
        return self.wcet

    def __repr__(self) -> str:
        return (f"PeriodicTask({self.name!r}, T={self.period}, "
                f"C={self.wcet}, D={self.deadline})")


@dataclass
class TaskSet:
    """An ordered collection of periodic tasks."""

    tasks: List[PeriodicTask] = field(default_factory=list)

    def add(self, task: PeriodicTask) -> PeriodicTask:
        if any(t.name == task.name for t in self.tasks):
            raise ValueError(f"duplicate task name {task.name!r}")
        self.tasks.append(task)
        return task

    @property
    def utilization(self) -> float:
        return sum(task.utilization for task in self.tasks)

    def by_priority(self) -> List[PeriodicTask]:
        """Tasks sorted by explicit priority, falling back to rate-monotonic
        order (shorter period = higher priority)."""
        if all(task.priority is not None for task in self.tasks):
            return sorted(self.tasks, key=lambda t: (t.priority, t.period))
        return sorted(self.tasks, key=lambda t: (t.period, t.name))

    def __iter__(self):
        return iter(self.tasks)

    def __len__(self) -> int:
        return len(self.tasks)


def hyperperiod(periods: List[float], resolution: float = 1e-6) -> float:
    """Least common multiple of (possibly fractional) periods."""
    if not periods:
        raise ValueError("no periods")
    fractions = [Fraction(p).limit_denominator(int(1 / resolution))
                 for p in periods]
    denominator = 1
    for frac in fractions:
        denominator = denominator * frac.denominator // gcd(
            denominator, frac.denominator)
    numerators = [int(frac * denominator) for frac in fractions]
    result = numerators[0]
    for value in numerators[1:]:
        result = result * value // gcd(result, value)
    return result / denominator


__all__ = ["PeriodicTask", "TaskSet", "hyperperiod"]
