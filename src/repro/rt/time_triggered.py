"""Time-triggered executive (Kopetz-style, paper ref [3]).

At design time a periodic schedule is computed from the WCET *estimates*:
stage ``k`` of job ``j`` is triggered at ``j * period + offset[k]`` where
``offset[k]`` is the cumulative estimated WCET of earlier stages.  Timers
fire regardless of whether data is actually ready.

Each inter-stage buffer is a single register (the classical time-triggered
state-message semantics).  When a stage overruns its estimate:

- the downstream stage's timer fires anyway and it **reads the previous
  job's data again** (duplicate), and
- when the overrunning stage finally writes, it **overwrites** a value the
  consumer never saw (loss).

Both are corruption *inside* the application, exactly as section III
describes: "In a time-driven system, the data is corrupted in this
situation because data would be overwritten in a buffer or the same data
would be read again."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.desim import Delay, Simulator
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import TraceSink
from repro.rt.pipeline import DeliveredItem, PipelineSpec


@dataclass
class _Register:
    """Single-slot state-message buffer."""

    seq: Optional[int] = None
    value: Optional[int] = None
    reads_of_current: int = 0
    overwrites_unread: int = 0

    def write(self, seq: int, value: int) -> None:
        if self.seq is not None and self.reads_of_current == 0:
            self.overwrites_unread += 1
        self.seq = seq
        self.value = value
        self.reads_of_current = 0

    def read(self) -> Tuple[Optional[int], Optional[int]]:
        self.reads_of_current += 1
        return self.seq, self.value


@dataclass
class TimeTriggeredResult:
    """Outcome of a time-triggered pipeline run."""

    delivered: List[DeliveredItem] = field(default_factory=list)
    duplicates_internal: int = 0     # a stage re-read the previous item
    overwrites_internal: int = 0     # a value was overwritten unread
    stale_reads_by_stage: Dict[str, int] = field(default_factory=dict)
    jobs_run: int = 0
    schedule_offsets: Dict[str, float] = field(default_factory=dict)
    # Deadline handling (see run_time_triggered's overrun_policy).
    deadline_misses: int = 0         # firings whose demand exceeded the slot
    jobs_skipped: int = 0            # firings aborted by policy="skip"
    degraded_jobs: int = 0           # firings shortened by policy="degrade"
    overrun_policy: Optional[str] = None
    # Observability registry: per-stage firings, slot overruns (actual
    # execution time exceeded the WCET estimate), execution-time histogram.
    metrics: Optional[MetricsRegistry] = None

    @property
    def internal_corruptions(self) -> int:
        return self.duplicates_internal + self.overwrites_internal

    @property
    def delivered_ok(self) -> int:
        return sum(1 for item in self.delivered if item.ok)

    @property
    def corruption_rate(self) -> float:
        if not self.delivered:
            return 0.0
        return 1 - self.delivered_ok / len(self.delivered)


def compute_offsets(spec: PipelineSpec,
                    slack: Optional[float] = None) -> Dict[str, float]:
    """Design-time schedule: cumulative WCET-estimate offsets per stage.

    A tiny per-stage ``slack`` (default ``period * 1e-6``) breaks the tie
    when a producer finishes *exactly* at its estimate: the consumer's
    trigger must fall strictly after an on-time write, as any real
    time-triggered schedule guarantees by construction."""
    if slack is None:
        slack = spec.period * 1e-6
    offsets: Dict[str, float] = {}
    cursor = 0.0
    for index, stage in enumerate(spec.stages):
        offsets[stage.name] = cursor + index * slack
        cursor += stage.wcet_estimate
    return offsets


def run_time_triggered(spec: PipelineSpec, jobs: int,
                       sink: Optional[TraceSink] = None,
                       metrics: Optional[MetricsRegistry] = None,
                       overrun_policy: Optional[str] = None,
                       degrade_factor: float = 0.5) -> TimeTriggeredResult:
    """Execute ``jobs`` pipeline iterations under the time-triggered
    executive and report delivery/corruption statistics.

    ``overrun_policy`` decides what happens when a firing's execution
    demand exceeds its WCET slot (a deadline miss, always detected and
    counted):

    - ``None`` (default): historical behaviour -- the stage runs long
      and lateness cascades into stale reads/overwrites downstream;
    - ``"skip"``: the executive aborts the firing at its slot boundary;
      the stage writes no output for that job (downstream sees the
      previous value) but the *schedule* never slips;
    - ``"degrade"``: the stage falls back to a cheaper approximation
      (``execution * degrade_factor``, capped at the slot) and still
      writes its output -- graceful quality loss instead of corruption.

    With a ``sink`` each stage execution becomes a span on the
    ``rt/<stage>`` track and every stale read / deadline miss an
    instant; ``metrics`` accumulates firings, slot overruns and
    execution-time histograms.
    """
    if overrun_policy not in (None, "skip", "degrade"):
        raise ValueError(f"unknown overrun_policy: {overrun_policy!r}")
    if not 0.0 < degrade_factor <= 1.0:
        raise ValueError(f"degrade_factor must be in (0, 1]: {degrade_factor}")
    spec.validate()
    if sum(stage.wcet_estimate for stage in spec.stages) > spec.period:
        raise ValueError(
            "design-time schedule infeasible: estimated WCETs exceed period")
    sim = Simulator()
    offsets = compute_offsets(spec)
    metrics = metrics if metrics is not None else MetricsRegistry()
    result = TimeTriggeredResult(schedule_offsets=dict(offsets),
                                 metrics=metrics,
                                 overrun_policy=overrun_policy)
    result.stale_reads_by_stage = {s.name: 0 for s in spec.stages}

    stage_count = len(spec.stages)
    # registers[k] connects stage k-1 -> stage k (register 0 is unused; the
    # source generates its own data).
    registers = [_Register() for _ in range(stage_count)]

    def stage_process(stage_index: int):
        stage = spec.stages[stage_index]
        job = 0
        while job < jobs:
            trigger_time = job * spec.period + offsets[stage.name]
            delay = trigger_time - sim.now
            if delay > 0:
                yield Delay(delay)
            # Read input at the trigger instant (state-message semantics).
            if stage_index == 0:
                seq, value = job, job
            else:
                seq, value = registers[stage_index].read()
                if seq != job:
                    result.stale_reads_by_stage[stage.name] += 1
                    result.duplicates_internal += 1
                    metrics.counter(f"tt.{stage.name}.stale_reads").inc()
                    if sink is not None:
                        sink.instant("stale_read", track=f"rt/{stage.name}",
                                     ts=sim.now, job=job, got=seq)
            execution = stage.execution_time(job)
            overrun = execution > stage.wcet_estimate
            skipped = False
            metrics.counter(f"tt.{stage.name}.firings").inc()
            if overrun:
                metrics.counter(f"tt.{stage.name}.slot_overruns").inc()
                result.deadline_misses += 1
                metrics.counter("tt.deadline_misses").inc()
                if sink is not None:
                    sink.instant("deadline_miss", track=f"rt/{stage.name}",
                                 ts=sim.now, job=job, demand=execution,
                                 budget=stage.wcet_estimate,
                                 policy=overrun_policy)
                if overrun_policy == "skip":
                    execution = stage.wcet_estimate
                    skipped = True
                    result.jobs_skipped += 1
                    metrics.counter("tt.jobs_skipped").inc()
                elif overrun_policy == "degrade":
                    execution = min(execution * degrade_factor,
                                    stage.wcet_estimate)
                    result.degraded_jobs += 1
                    metrics.counter("tt.degraded_jobs").inc()
            metrics.histogram(f"tt.{stage.name}.exec_time").observe(execution)
            if sink is not None:
                sink.complete(f"{stage.name}#{job}", ts=sim.now,
                              dur=execution, track=f"rt/{stage.name}",
                              overrun=overrun)
            yield Delay(execution)
            if skipped:
                pass  # aborted firing: no output write, no delivery
            elif stage_index + 1 < stage_count:
                register = registers[stage_index + 1]
                before = register.overwrites_unread
                register.write(seq if seq is not None else job,
                               value if value is not None else job)
                result.overwrites_internal += (
                    register.overwrites_unread - before)
            else:
                result.delivered.append(
                    DeliveredItem(expected_seq=job, received_seq=seq,
                                  time=sim.now))
            job += 1
        if stage_index == stage_count - 1:
            result.jobs_run = job

    for index in range(stage_count):
        sim.spawn(stage_process(index), name=spec.stages[index].name)
    sim.run()
    return result


__all__ = ["TimeTriggeredResult", "compute_offsets", "run_time_triggered"]
