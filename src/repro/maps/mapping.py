"""Task-to-PE mapping and scheduling (section IV).

"Using optimization algorithms, the task graphs are mapped to the target
architecture, taking into account real-time requirements and preferred PE
classes.  Hard real-time applications are scheduled statically, while soft
and non-real-time applications are scheduled dynamically according to
their priority in best effort manner."

- :func:`map_task_graph` -- HEFT-style list scheduling of one task graph
  (static schedule: per-task start/finish estimates);
- :func:`map_multi_app` -- multi-application mapping: hard-RT apps are
  placed first with a utilization admission test against the concurrency
  graph's worst-case scenarios; soft/best-effort apps are load-balanced
  onto the remaining capacity in priority order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.maps.concurrency import ConcurrencyGraph
from repro.maps.spec import ApplicationSpec, PESpec, PlatformSpec, RTClass
from repro.maps.taskgraph import TaskGraph


@dataclass
class ScheduledTask:
    """Static-schedule entry for one task."""

    task: str
    pe: str
    start: float
    finish: float


@dataclass
class Mapping:
    """A task-to-PE assignment with its static schedule estimate."""

    graph: TaskGraph
    platform: PlatformSpec
    assignment: Dict[str, str] = field(default_factory=dict)
    schedule: List[ScheduledTask] = field(default_factory=list)
    makespan: float = 0.0

    def pe_of(self, task: str) -> str:
        return self.assignment[task]

    def tasks_on(self, pe: str) -> List[str]:
        return [t for t, p in self.assignment.items() if p == pe]

    def pe_load(self) -> Dict[str, float]:
        """Total abstract cycles each PE executes."""
        load: Dict[str, float] = {pe.name: 0.0 for pe in self.platform.pes}
        for entry in self.schedule:
            load[entry.pe] += entry.finish - entry.start
        return load

    def utilization_per_pe(self, period: float) -> Dict[str, float]:
        if period <= 0:
            raise ValueError("period must be positive")
        return {pe: cycles / period for pe, cycles in self.pe_load().items()}


def _upward_rank(graph: TaskGraph, platform: PlatformSpec) -> Dict[str, float]:
    """HEFT upward rank with average execution and communication costs."""
    mean_speed = {pe.name: pe.freq for pe in platform.pes}
    ranks: Dict[str, float] = {}
    order = graph.topological_order()
    for name in reversed(order):
        node = graph.nodes[name]
        avg_cost = sum(node.cost_on(pe.pe_class, pe.freq)
                       for pe in platform.pes) / len(platform.pes)
        best_child = 0.0
        for edge in graph.out_edges(name):
            comm = platform.comm_cost(edge.words)
            best_child = max(best_child, ranks[edge.dst] + comm)
        ranks[name] = avg_cost + best_child
    return ranks


def map_task_graph(graph: TaskGraph, platform: PlatformSpec,
                   allowed_pes: Optional[List[str]] = None) -> Mapping:
    """HEFT list scheduling: assign each task (by decreasing upward rank)
    to the PE minimizing its earliest finish time.

    Respects each task's ``preferred_pe`` class when the platform has a PE
    of that class; ``allowed_pes`` restricts the candidate set (used by the
    multi-app mapper to carve out capacity)."""
    if not platform.pes:
        raise ValueError("platform has no PEs")
    candidates_all = [pe for pe in platform.pes
                      if allowed_pes is None or pe.name in allowed_pes]
    if not candidates_all:
        raise ValueError("no allowed PEs")
    ranks = _upward_rank(graph, platform)
    order = sorted(graph.nodes, key=lambda n: (-ranks[n], n))

    pe_available: Dict[str, float] = {pe.name: 0.0 for pe in candidates_all}
    finish_time: Dict[str, float] = {}
    mapping = Mapping(graph, platform)

    for name in order:
        node = graph.nodes[name]
        candidates = candidates_all
        if node.preferred_pe is not None:
            preferred = [pe for pe in candidates_all
                         if pe.pe_class == node.preferred_pe]
            if preferred:
                candidates = preferred
        best: Optional[Tuple[float, float, str, PESpec]] = None
        for pe in candidates:
            ready = 0.0
            for edge in graph.in_edges(name):
                pred_finish = finish_time[edge.src]
                if mapping.assignment[edge.src] != pe.name:
                    pred_finish += platform.comm_cost(edge.words)
                ready = max(ready, pred_finish)
            start = max(ready, pe_available[pe.name])
            finish = start + node.cost_on(pe.pe_class, pe.freq)
            key = (finish, start, pe.name)
            if best is None or key < best[:3]:
                best = (finish, start, pe.name, pe)
        assert best is not None
        finish, start, pe_name, pe = best
        mapping.assignment[name] = pe_name
        mapping.schedule.append(ScheduledTask(name, pe_name, start, finish))
        pe_available[pe_name] = finish
        finish_time[name] = finish
        mapping.makespan = max(mapping.makespan, finish)
    return mapping


@dataclass
class MultiAppMapping:
    """Result of mapping several applications onto one platform."""

    mappings: Dict[str, Mapping] = field(default_factory=dict)
    admitted_hard: List[str] = field(default_factory=list)
    rejected_hard: List[str] = field(default_factory=list)
    worst_case_load: Dict[str, float] = field(default_factory=dict)

    def mapping_of(self, app: str) -> Mapping:
        return self.mappings[app]


def map_multi_app(apps: List[Tuple[ApplicationSpec, TaskGraph]],
                  platform: PlatformSpec,
                  concurrency: Optional[ConcurrencyGraph] = None,
                  utilization_bound: float = 1.0) -> MultiAppMapping:
    """Map several applications, hard-RT first with admission control.

    Hard apps are mapped in increasing-period (rate-monotonic-ish) order;
    each is admitted only if, under the concurrency graph's worst-case
    scenario, no PE exceeds ``utilization_bound``.  Soft and best-effort
    apps are then mapped in priority order onto all PEs (they do not
    affect admission).
    """
    result = MultiAppMapping()
    concurrency = concurrency or _fully_concurrent(
        [spec.name for spec, _ in apps])

    app_pe_load: Dict[str, Dict[str, float]] = {}

    hard = [(spec, graph) for spec, graph in apps
            if spec.rt_class == RTClass.HARD]
    other = [(spec, graph) for spec, graph in apps
             if spec.rt_class != RTClass.HARD]
    hard.sort(key=lambda item: (item[0].period or 0.0, item[0].name))
    other.sort(key=lambda item: (item[0].priority, item[0].name))

    for spec, graph in hard:
        mapping = map_task_graph(graph, platform)
        assert spec.period is not None
        candidate_load = mapping.utilization_per_pe(spec.period)
        app_pe_load[spec.name] = candidate_load
        worst = concurrency.worst_case_load(app_pe_load)
        if all(value <= utilization_bound + 1e-9 for value in worst.values()):
            result.mappings[spec.name] = mapping
            result.admitted_hard.append(spec.name)
            result.worst_case_load = worst
        else:
            del app_pe_load[spec.name]
            result.rejected_hard.append(spec.name)

    for spec, graph in other:
        mapping = map_task_graph(graph, platform)
        result.mappings[spec.name] = mapping
        if spec.period:
            app_pe_load[spec.name] = mapping.utilization_per_pe(spec.period)
    result.worst_case_load = concurrency.worst_case_load(app_pe_load)
    return result


def _fully_concurrent(names: List[str]) -> ConcurrencyGraph:
    graph = ConcurrencyGraph()
    for name in names:
        graph.add_app(name)
    for i, name_a in enumerate(names):
        for name_b in names[i + 1:]:
            graph.set_concurrent(name_a, name_b)
    return graph


__all__ = ["Mapping", "MultiAppMapping", "ScheduledTask", "map_multi_app",
           "map_task_graph"]
