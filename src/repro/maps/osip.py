"""OSIP: the task-dispatching operating-system ASIP (section IV).

"in the future MAPS will also support a dedicated task dispatching ASIP
(OSIP, operating system ASIP) in order to enable higher PE utilization via
more fine-grained tasks and low context switching overhead.  Early
evaluation case studies exhibited great potential of the OSIP approach in
lowering the task-switching overhead, compared to an additional RISC
performing scheduling in a typical MPSoC environment."

Both scheduler implementations serve a task farm: worker PEs request the
next task from the (single) scheduler, which serializes dispatch requests.
The RISC software scheduler costs hundreds of cycles per dispatch; the
OSIP hardware scheduler costs tens.  The E8 bench sweeps task granularity
and shows where each keeps the PEs utilized.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.desim import Delay, Resource, Simulator


@dataclass
class SchedulerModel:
    """A centralized task dispatcher with a fixed per-dispatch cost."""

    name: str
    dispatch_cycles: float

    def __post_init__(self) -> None:
        if self.dispatch_cycles <= 0:
            raise ValueError("dispatch cost must be positive")


@dataclass
class RiscSchedulerModel(SchedulerModel):
    """An additional RISC core running the scheduler in software.

    Default cost follows the typical figure for a software scheduler doing
    queue management + context switch over a bus: hundreds of cycles.
    """

    name: str = "risc"
    dispatch_cycles: float = 300.0


@dataclass
class OsipModel(SchedulerModel):
    """The OSIP scheduling ASIP: dispatch in tens of cycles."""

    name: str = "osip"
    dispatch_cycles: float = 25.0


@dataclass
class TaskFarmResult:
    """Outcome of a task-farm simulation."""

    scheduler: str
    n_workers: int
    task_cycles: float
    n_tasks: int
    makespan: float
    busy_cycles: float
    dispatch_wait: float

    @property
    def utilization(self) -> float:
        if self.makespan <= 0:
            return 0.0
        return self.busy_cycles / (self.makespan * self.n_workers)

    @property
    def ideal_makespan(self) -> float:
        import math
        return math.ceil(self.n_tasks / self.n_workers) * self.task_cycles


def task_farm_utilization(scheduler: SchedulerModel, n_workers: int,
                          task_cycles: float, n_tasks: int) -> TaskFarmResult:
    """Simulate a task farm: workers repeatedly fetch one task from the
    central scheduler (serialized, ``dispatch_cycles`` each) and execute it
    for ``task_cycles``."""
    if n_workers < 1 or n_tasks < 1:
        raise ValueError("need at least one worker and one task")
    sim = Simulator()
    dispatcher = Resource(1, name=scheduler.name)
    remaining = [n_tasks]
    busy = [0.0]
    wait = [0.0]
    finish = [0.0]

    def worker(_worker_id: int):
        while True:
            if remaining[0] <= 0:
                return
            request_at = sim.now
            yield from dispatcher.acquire()
            if remaining[0] <= 0:
                dispatcher.release()
                return
            remaining[0] -= 1
            yield Delay(scheduler.dispatch_cycles)
            dispatcher.release()
            wait[0] += sim.now - request_at
            yield Delay(task_cycles)
            busy[0] += task_cycles
            finish[0] = max(finish[0], sim.now)

    for worker_id in range(n_workers):
        sim.spawn(worker(worker_id), name=f"worker{worker_id}")
    sim.run()
    return TaskFarmResult(scheduler.name, n_workers, task_cycles, n_tasks,
                          finish[0], busy[0], wait[0])


def utilization_curve(scheduler: SchedulerModel, n_workers: int,
                      grain_sweep: List[float],
                      total_work: float = 200_000.0) -> Dict[float, float]:
    """Utilization as a function of task granularity, at constant total
    work (finer grain = more tasks)."""
    curve: Dict[float, float] = {}
    for grain in grain_sweep:
        n_tasks = max(1, int(round(total_work / grain)))
        result = task_farm_utilization(scheduler, n_workers, grain, n_tasks)
        curve[grain] = result.utilization
    return curve


__all__ = ["OsipModel", "RiscSchedulerModel", "SchedulerModel",
           "TaskFarmResult", "task_farm_utilization", "utilization_curve"]
