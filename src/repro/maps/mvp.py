"""MVP: the MAPS Virtual Platform (section IV).

"The resulting mapping can be exercised and refined with a fast,
high-level SystemC based simulation environment (MAPS Virtual Platform,
MVP), which has been designed to evaluate different software settings
specifically in a multi-application scenario."

MVP simulates mapped task graphs on the discrete-event kernel:

- every PE is a serial server (one task at a time, FIFO);
- each task instance waits for its input tokens, occupies its PE for its
  (class-scaled) cost, then emits tokens, paying communication costs on
  cross-PE edges;
- task graphs run in *streaming* mode: ``iterations`` instances flow
  through, pipelining across PEs;
- several applications can run concurrently, contending for the PEs --
  the multi-application scenario MVP exists for.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.desim import Delay, Fifo, PriorityResource, Simulator
from repro.maps.mapping import Mapping
from repro.maps.spec import PlatformSpec


@dataclass
class AppRun:
    """One application instance to simulate."""

    name: str
    mapping: Mapping
    iterations: int = 1
    period: Optional[float] = None      # source activation period
    deadline: Optional[float] = None    # per-iteration latency budget
    start_time: float = 0.0
    # Dynamic best-effort priority (section IV): lower = more urgent;
    # contending tasks on one PE are dispatched in priority order.
    priority: int = 10
    # Static dispatch (section IV: "hard real-time applications are
    # scheduled statically"): each task instance is released at its static
    # schedule time plus iteration * period, instead of self-timed.
    # Requires a mapping with a schedule and a period.
    static_dispatch: bool = False


@dataclass
class MvpReport:
    """Simulation outcome."""

    makespan: float = 0.0
    # app -> list of per-iteration (start, finish) pairs.
    iteration_spans: Dict[str, List[Tuple[float, float]]] = field(
        default_factory=dict)
    pe_busy: Dict[str, float] = field(default_factory=dict)
    comm_cycles: float = 0.0
    # app -> count of statically-dispatched task instances whose inputs or
    # PE were not ready at their scheduled release (the schedule was
    # violated at run time -- admission should have prevented this).
    schedule_violations: Dict[str, int] = field(default_factory=dict)

    def latencies(self, app: str) -> List[float]:
        return [finish - start for start, finish in self.iteration_spans[app]]

    def throughput(self, app: str) -> float:
        spans = self.iteration_spans[app]
        if len(spans) < 2:
            return 0.0
        first_finish = spans[0][1]
        last_finish = spans[-1][1]
        if last_finish <= first_finish:
            return float("inf")
        return (len(spans) - 1) / (last_finish - first_finish)

    def deadline_misses(self, app: str, deadline: float) -> int:
        return sum(1 for lat in self.latencies(app) if lat > deadline + 1e-9)

    def utilization(self, pe: str) -> float:
        if self.makespan <= 0:
            return 0.0
        return self.pe_busy.get(pe, 0.0) / self.makespan


def simulate_mapping(runs: List[AppRun], platform: PlatformSpec,
                     sim: Optional[Simulator] = None,
                     channel_capacity: int = 4) -> MvpReport:
    """Simulate one or more mapped applications sharing the platform."""
    sim = sim or Simulator()
    report = MvpReport()
    pe_resources: Dict[str, PriorityResource] = {
        pe.name: PriorityResource(name=pe.name) for pe in platform.pes}
    pe_busy: Dict[str, float] = {pe.name: 0.0 for pe in platform.pes}
    remaining = [0]  # mutable completion counter across closures

    for run in runs:
        report.iteration_spans[run.name] = []
        report.schedule_violations[run.name] = 0
        if run.static_dispatch:
            if run.period is None or not run.mapping.schedule:
                raise ValueError(
                    f"app {run.name!r}: static dispatch needs a period "
                    f"and a mapping with a static schedule")
        remaining[0] += 1
        _spawn_app(sim, run, platform, pe_resources, pe_busy, report,
                   channel_capacity)

    sim.run()
    report.pe_busy = pe_busy
    report.makespan = max((finish for spans in
                           report.iteration_spans.values()
                           for _, finish in spans), default=0.0)
    return report


def _spawn_app(sim: Simulator, run: AppRun, platform: PlatformSpec,
               pe_resources: Dict[str, PriorityResource],
               pe_busy: Dict[str, float], report: MvpReport,
               channel_capacity: int) -> None:
    graph = run.mapping.graph
    mapping = run.mapping
    # One FIFO per edge; tokens are iteration indices.
    edge_fifos = {id(edge): Fifo(capacity=channel_capacity,
                                 name=f"{run.name}.{edge.src}->{edge.dst}")
                  for edge in graph.edges}
    # Iteration bookkeeping for latency measurement.
    starts: Dict[int, float] = {}
    unfinished_sinks: Dict[int, int] = {}
    sink_names = set(graph.sinks())
    source_names = set(graph.sources())

    static_starts: Dict[str, float] = {}
    if run.static_dispatch:
        static_starts = {entry.task: entry.start
                         for entry in mapping.schedule}

    def task_process(task_name: str):
        node = graph.nodes[task_name]
        pe_name = mapping.pe_of(task_name)
        pe = platform.pe(pe_name)
        resource = pe_resources[pe_name]
        in_edges = graph.in_edges(task_name)
        out_edges = graph.out_edges(task_name)
        is_source = task_name in source_names
        is_sink = task_name in sink_names
        for iteration in range(run.iterations):
            if run.static_dispatch:
                release = (run.start_time + static_starts[task_name]
                           + iteration * run.period)
                if release > sim.now:
                    yield Delay(release - sim.now)
                if iteration not in starts and is_source:
                    starts[iteration] = sim.now
                    unfinished_sinks[iteration] = len(sink_names)
            elif is_source:
                # Periodic activation (annotation), else as fast as allowed.
                if run.period is not None:
                    release = run.start_time + iteration * run.period
                    if release > sim.now:
                        yield Delay(release - sim.now)
                elif run.start_time > sim.now and iteration == 0:
                    yield Delay(run.start_time - sim.now)
                if iteration not in starts:
                    starts[iteration] = sim.now
                    unfinished_sinks[iteration] = len(sink_names)
            release_point = sim.now
            for edge in in_edges:
                yield from edge_fifos[id(edge)].get()
            duration = node.cost_on(pe.pe_class, pe.freq)
            yield from resource.acquire(priority=run.priority)
            if run.static_dispatch and sim.now > release_point + 1e-9:
                # Inputs or the PE were not ready at the scheduled release:
                # the static schedule was violated at run time.
                report.schedule_violations[run.name] += 1
            yield Delay(duration)
            pe_busy[pe_name] += duration
            resource.release()
            for edge in out_edges:
                if mapping.pe_of(edge.dst) != pe_name:
                    comm = platform.comm_cost(edge.words)
                    report.comm_cycles += comm
                    yield Delay(comm)
                yield from edge_fifos[id(edge)].put(iteration)
            if is_sink:
                unfinished_sinks[iteration] -= 1
                if unfinished_sinks[iteration] == 0:
                    report.iteration_spans[run.name].append(
                        (starts[iteration], sim.now))

    for task_name in graph.nodes:
        sim.spawn(task_process(task_name), name=f"{run.name}.{task_name}")


__all__ = ["AppRun", "MvpReport", "simulate_mapping"]
