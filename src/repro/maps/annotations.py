"""Lightweight C extensions: MAPS source annotations (section IV).

"using some lightweight C extensions, real-time properties such as latency
and period as well as preferred PE types can be optionally annotated."

The extension is comment-based so annotated sources remain plain mini-C::

    // @maps period=600 latency=550 pe=dsp class=hard priority=3
    int main() { ... }

An annotation line binds to the next function definition in the source.
:func:`parse_annotations` extracts them; :func:`annotated_application`
builds a ready :class:`~repro.maps.spec.ApplicationSpec`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, Optional

from repro.cir.parser import parse
from repro.maps.spec import ApplicationSpec, PEClass, RTClass

_ANNOTATION_RE = re.compile(r"^\s*//\s*@maps\b(?P<body>.*)$")
_FUNC_RE = re.compile(
    r"^\s*(?:int|float|void)\s*\*?\s*(?P<name>[A-Za-z_]\w*)\s*\(")
_KEY_VALUE_RE = re.compile(r"(?P<key>[a-z_]+)\s*=\s*(?P<value>[^\s]+)")

_VALID_KEYS = {"period", "latency", "pe", "class", "priority"}


class AnnotationError(Exception):
    """Raised on a malformed @maps annotation."""


@dataclass
class MapsAnnotation:
    """Parsed annotation attached to one function."""

    function: str
    period: Optional[float] = None
    latency: Optional[float] = None
    preferred_pe: Optional[PEClass] = None
    rt_class: RTClass = RTClass.BEST_EFFORT
    priority: int = 10
    line: int = 0


def parse_annotations(source: str) -> Dict[str, MapsAnnotation]:
    """Extract every ``// @maps`` annotation, bound to the function that
    follows it.  Raises :class:`AnnotationError` on unknown keys, bad
    values, or a dangling annotation with no function after it."""
    annotations: Dict[str, MapsAnnotation] = {}
    pending: Optional[MapsAnnotation] = None
    for line_no, line in enumerate(source.splitlines(), start=1):
        matched = _ANNOTATION_RE.match(line)
        if matched:
            if pending is not None:
                raise AnnotationError(
                    f"line {pending.line}: annotation not followed by a "
                    f"function before the next annotation")
            pending = _parse_body(matched.group("body"), line_no)
            continue
        func = _FUNC_RE.match(line)
        if func and pending is not None:
            pending.function = func.group("name")
            annotations[pending.function] = pending
            pending = None
    if pending is not None:
        raise AnnotationError(
            f"line {pending.line}: annotation not followed by a function")
    return annotations


def _parse_body(body: str, line_no: int) -> MapsAnnotation:
    annotation = MapsAnnotation(function="", line=line_no)
    seen = set()
    for match in _KEY_VALUE_RE.finditer(body):
        key, value = match.group("key"), match.group("value")
        if key not in _VALID_KEYS:
            raise AnnotationError(
                f"line {line_no}: unknown annotation key {key!r} "
                f"(valid: {sorted(_VALID_KEYS)})")
        if key in seen:
            raise AnnotationError(f"line {line_no}: duplicate key {key!r}")
        seen.add(key)
        try:
            if key == "period":
                annotation.period = float(value)
            elif key == "latency":
                annotation.latency = float(value)
            elif key == "pe":
                annotation.preferred_pe = PEClass(value)
            elif key == "class":
                annotation.rt_class = RTClass(value)
            elif key == "priority":
                annotation.priority = int(value)
        except ValueError as error:
            raise AnnotationError(
                f"line {line_no}: bad value {value!r} for {key!r}: "
                f"{error}") from error
    stripped = _KEY_VALUE_RE.sub("", body).strip()
    if stripped:
        raise AnnotationError(
            f"line {line_no}: unparseable annotation text {stripped!r}")
    return annotation


def annotated_application(name: str, source: str,
                          entry: str = "main") -> ApplicationSpec:
    """Parse annotated mini-C into an :class:`ApplicationSpec`.

    The entry function's annotation (if any) provides the real-time
    properties; the program itself is parsed as usual."""
    program = parse(source)
    annotations = parse_annotations(source)
    annotation = annotations.get(entry, MapsAnnotation(function=entry))
    return ApplicationSpec(
        name=name,
        program=program,
        entry=entry,
        rt_class=annotation.rt_class,
        period=annotation.period,
        latency=annotation.latency,
        priority=annotation.priority,
        preferred_pe=annotation.preferred_pe,
    )


__all__ = ["AnnotationError", "MapsAnnotation", "annotated_application",
           "parse_annotations"]
