"""The end-to-end MAPS flow (Figure 1 of the paper).

:class:`MapsFlow` chains the phases: sequential C in -> dataflow analysis &
partitioning -> (optional data-parallel expansion) -> mapping -> MVP
simulation -> per-PE code generation -> semantic validation against the
sequential original.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.cir.interp import run_program
from repro.desim import Simulator
from repro.obs.trace import NullSink, TraceSink
from repro.cir.nodes import Program
from repro.cir.parser import parse
from repro.maps.codegen import generate_data_parallel_code, render_pe_sources
from repro.maps.mapping import Mapping, map_task_graph
from repro.maps.mvp import AppRun, MvpReport, simulate_mapping
from repro.maps.partition import (
    PartitionResult, partition_data_parallel, partition_function,
)
from repro.maps.spec import PlatformSpec
from repro.maps.taskgraph import TaskGraph


@dataclass
class FlowReport:
    """Everything the flow produced for one application."""

    app_name: str
    partition: PartitionResult
    expanded_graph: TaskGraph
    mapping: Mapping
    mvp: MvpReport
    pe_sources: Dict[str, str]
    sequential_result: object
    parallel_result: object
    semantics_preserved: bool
    estimated_speedup: float
    annotation: object = None  # MapsAnnotation of the entry, if any

    @property
    def measured_speedup(self) -> float:
        """Sequential critical cost over simulated makespan."""
        total = self.partition.task_graph.total_cost()
        if self.mvp.makespan <= 0:
            return 0.0
        return total / self.mvp.makespan


class MapsFlow:
    """Driver object mirroring Figure 1.

    With a :class:`~repro.obs.TraceSink` every phase of the flow becomes
    a span on the ``maps.flow`` track (host-clock microseconds), and the
    MVP simulations run under a kernel probe, so one dump shows the
    application phases, the simulated tasks and the kernel itself.
    """

    def __init__(self, platform: PlatformSpec,
                 sink: Optional[TraceSink] = None) -> None:
        self.platform = platform
        self.sink = sink if sink is not None else NullSink()

    def _observed_sim(self) -> Optional[Simulator]:
        """A kernel-probed simulator for MVP runs (None when untraced)."""
        if isinstance(self.sink, NullSink):
            return None
        from repro.obs.probe import observe
        sim = Simulator()
        observe(sim, sink=self.sink)
        return sim

    def run(self, source_or_program, entry: str = "main",
            split_k: Optional[int] = None,
            app_name: str = "app",
            iterations: int = 1,
            refine: bool = False,
            refine_iterations: int = 1200) -> FlowReport:
        """Run the full flow on sequential code.

        ``split_k`` data-parallel-splits every parallelizable loop task
        into ``split_k`` chunks (default: number of platform PEs).

        ``refine=True`` enables Figure 1's refinement loop: "the resulting
        mapping can be exercised and refined with ... MVP".  The HEFT
        mapping is exercised on MVP; an annealing pass seeded with it
        searches for a better assignment, the candidate is re-exercised,
        and the better of the two (by simulated makespan) is kept.
        """
        sink = self.sink
        annotation = None
        with sink.span("parse", track="maps.flow", app=app_name):
            if isinstance(source_or_program, Program):
                program = source_or_program
            else:
                program = parse(source_or_program)
                # Lightweight C extensions: "// @maps pe=dsp period=..."
                # lines annotate the functions they precede (section IV).
                from repro.maps.annotations import parse_annotations
                annotation = parse_annotations(source_or_program).get(entry)
        split_k = split_k or len(self.platform.pes)

        # 1. dataflow analysis + partitioning.
        with sink.span("partition", track="maps.flow", app=app_name):
            partition = partition_function(program, entry)
            if annotation is not None and annotation.preferred_pe is not None:
                for node in partition.task_graph.nodes.values():
                    node.preferred_pe = annotation.preferred_pe

        # 2. data-parallel expansion of every parallelizable loop.
        with sink.span("expand", track="maps.flow", app=app_name):
            expanded = partition.task_graph
            for task_name in partition.parallelizable_tasks:
                staged = PartitionResult(expanded, partition.clusters,
                                         partition.loop_infos,
                                         partition.parallelizable_tasks,
                                         program, entry)
                expanded = partition_data_parallel(staged, task_name, split_k)

        # 3. mapping (HEFT list scheduling).
        with sink.span("map", track="maps.flow", app=app_name):
            mapping = map_task_graph(expanded, self.platform)

        # 4. MVP simulation (+ optional Figure-1 refinement loop).
        with sink.span("mvp_simulate", track="maps.flow", app=app_name):
            mvp = simulate_mapping(
                [AppRun(app_name, mapping, iterations=iterations)],
                self.platform, sim=self._observed_sim())
        if refine:
            with sink.span("refine", track="maps.flow", app=app_name):
                from repro.maps.annealing import map_task_graph_annealing
                candidate = map_task_graph_annealing(
                    expanded, self.platform, iterations=refine_iterations,
                    seed=1, initial=dict(mapping.assignment)).best
                candidate_mvp = simulate_mapping(
                    [AppRun(app_name, candidate, iterations=iterations)],
                    self.platform, sim=self._observed_sim())
                if candidate_mvp.makespan < mvp.makespan:
                    mapping, mvp = candidate, candidate_mvp

        # 5. code generation + per-PE sources.
        with sink.span("codegen", track="maps.flow", app=app_name):
            generated, gen_entry = generate_data_parallel_code(
                PartitionResult(expanded, partition.clusters,
                                partition.loop_infos,
                                partition.parallelizable_tasks, program,
                                entry),
                expanded)
            pe_sources = render_pe_sources(partition, expanded, mapping)

        # 6. semantic validation: generated parallel code vs original.
        with sink.span("validate", track="maps.flow", app=app_name):
            sequential = run_program(program, entry=entry)
            parallel = run_program(generated, entry=gen_entry)
            preserved = (sequential.return_value == parallel.return_value
                         and sequential.output == parallel.output)

        sequential_cost = partition.task_graph.total_cost()
        estimated = sequential_cost / max(mapping.makespan, 1e-9)
        return FlowReport(app_name, partition, expanded, mapping, mvp,
                          pe_sources, sequential, parallel, preserved,
                          estimated, annotation)


__all__ = ["FlowReport", "MapsFlow"]
