"""MAPS: MPSoC Application Programming Studio (paper section IV, Figure 1).

The MAPS flow, reproduced end to end:

1. applications enter as sequential mini-C or pre-parallelized task graphs,
   with lightweight real-time / PE-preference annotations
   (:mod:`repro.maps.spec`);
2. a concurrency graph captures which applications can be active
   simultaneously (:mod:`repro.maps.concurrency`);
3. dataflow analysis extracts parallelism from the sequential code and
   forms fine-grained task graphs (:mod:`repro.maps.partition`,
   :mod:`repro.maps.taskgraph`);
4. optimization algorithms map task graphs to the target architecture,
   statically for hard real-time, dynamically (priority, best-effort) for
   the rest (:mod:`repro.maps.mapping`);
5. the mapping is exercised on MVP, a fast high-level simulation
   environment for multi-application scenarios (:mod:`repro.maps.mvp`);
6. code generation translates task graphs into per-PE C code
   (:mod:`repro.maps.codegen`);
7. OSIP, a task-dispatching ASIP, is modelled against a RISC software
   scheduler (:mod:`repro.maps.osip`).

:class:`repro.maps.flow.MapsFlow` chains all of it, mirroring Figure 1.
"""

from repro.maps.spec import (
    ApplicationSpec,
    PEClass,
    PESpec,
    PlatformSpec,
    RTClass,
)
from repro.maps.taskgraph import TaskEdge, TaskGraph, TaskNode
from repro.maps.partition import (
    PartitionResult,
    partition_data_parallel,
    partition_function,
    partition_pipeline,
)
from repro.maps.concurrency import ConcurrencyGraph
from repro.maps.mapping import Mapping, map_task_graph, map_multi_app
from repro.maps.mvp import MvpReport, simulate_mapping
from repro.maps.codegen import generate_data_parallel_code, generate_pipeline_code
from repro.maps.osip import OsipModel, RiscSchedulerModel, task_farm_utilization
from repro.maps.flow import MapsFlow, FlowReport
from repro.maps.annotations import (
    AnnotationError,
    MapsAnnotation,
    annotated_application,
    parse_annotations,
)
from repro.maps.annealing import (
    AnnealingReport,
    RestartReport,
    annealing_restart_job,
    evaluate_assignment,
    map_task_graph_annealing,
    map_task_graph_annealing_restarts,
    map_task_graph_random,
)

__all__ = [
    "AnnealingReport", "AnnotationError", "ApplicationSpec",
    "MapsAnnotation", "annotated_application", "parse_annotations", "ConcurrencyGraph", "FlowReport", "Mapping",
    "MapsFlow", "MvpReport", "OsipModel", "PEClass", "PESpec",
    "PartitionResult", "PlatformSpec", "RTClass", "RiscSchedulerModel",
    "TaskEdge", "TaskGraph", "TaskNode", "generate_data_parallel_code",
    "generate_pipeline_code", "evaluate_assignment", "map_multi_app", "map_task_graph",
    "RestartReport", "annealing_restart_job", "map_task_graph_annealing",
    "map_task_graph_annealing_restarts", "map_task_graph_random",
    "partition_data_parallel", "partition_function", "partition_pipeline",
    "simulate_mapping", "task_farm_utilization",
]
