"""Semi-automatic code partitioning (section IV).

"MAPS uses advanced dataflow analysis to extract the available parallelism
from the sequential codes ... and to form a set of fine-grained task graphs
based on a coarse model of the target architecture."

Three partitioners are provided:

- :func:`partition_function` -- cluster the entry function's top-level
  statements into tasks, with data-dependence edges between clusters and
  per-loop parallelizability analysis (the fine-grained task graph);
- :func:`partition_data_parallel` -- split a DOALL/REDUCTION loop task
  into ``k`` chunk tasks (plus a combine task for reductions);
- :func:`partition_pipeline` -- turn the body of an outer (frame) loop
  into pipeline stages communicating through channels.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.cir.analysis.cost import CostWeights, estimate_cost
from repro.cir.analysis.dataflow import stmt_defs, stmt_uses
from repro.cir.analysis.dependence import (
    LoopClass, LoopInfo, analyze_loop,
)
from repro.cir.clone import clone
from repro.cir.nodes import (
    Assign, BinOp, Decl, Expr, For, FuncDef, Ident, IntLit, Program,
    Stmt,
)
from repro.cir.typesys import ArrayType
from repro.maps.spec import PEClass
from repro.maps.taskgraph import TaskGraph, TaskNode


@dataclass
class Cluster:
    """A candidate task: one loop or a run of straight-line statements."""

    name: str
    stmts: List[Stmt]
    loop_info: Optional[LoopInfo] = None

    @property
    def is_loop(self) -> bool:
        return self.loop_info is not None

    def defs(self) -> Set[str]:
        names: Set[str] = set()
        for stmt in self.stmts:
            for node in stmt.walk():
                if isinstance(node, (Assign, Decl)):
                    names |= stmt_defs(node)
        return names

    def uses(self) -> Set[str]:
        names: Set[str] = set()
        for stmt in self.stmts:
            for node in stmt.walk():
                if isinstance(node, Stmt):
                    names |= stmt_uses(node)
        return names


@dataclass
class PartitionResult:
    """Outcome of partitioning one application."""

    task_graph: TaskGraph
    clusters: Dict[str, Cluster] = field(default_factory=dict)
    loop_infos: Dict[str, LoopInfo] = field(default_factory=dict)
    parallelizable_tasks: List[str] = field(default_factory=list)
    program: Optional[Program] = None
    entry: str = "main"
    tool_decisions: int = 0  # automation metric used by the E6 bench

    def loop_task_names(self) -> List[str]:
        return list(self.loop_infos)


def _array_words(program: Program, func: FuncDef, name: str) -> int:
    """Size of an array variable in words, 1 for scalars/unknown."""
    for decl in program.globals:
        if decl.name == name and isinstance(decl.type, ArrayType):
            return decl.type.sizeof()
    for node in func.body.walk():
        if isinstance(node, Decl) and node.name == name and \
                isinstance(node.type, ArrayType):
            return node.type.sizeof()
    for param in func.params:
        if param.name == name and isinstance(param.type, ArrayType):
            return param.type.sizeof()
    return 1


def partition_function(program: Program, entry: str = "main",
                       weights: Optional[CostWeights] = None) -> PartitionResult:
    """Build the fine-grained task graph of ``entry``.

    Top-level ``for`` loops become loop tasks (analyzed for
    parallelizability); maximal runs of other statements become block
    tasks.  Edges carry flow dependences with estimated transfer volumes.
    """
    func = program.function(entry)
    weights = weights or CostWeights()
    pure = {f.name for f in program.functions
            if _function_is_pure(program, f)}

    clusters: List[Cluster] = []
    run: List[Stmt] = []
    decisions = 0

    def flush_run() -> None:
        nonlocal run
        if run:
            clusters.append(Cluster(f"block{len(clusters)}", run))
            run = []

    for stmt in func.body.stmts:
        if isinstance(stmt, For):
            flush_run()
            info = analyze_loop(stmt, pure_functions=pure)
            clusters.append(Cluster(f"loop{len(clusters)}_L{stmt.line}",
                                    [stmt], info))
            decisions += 1
        else:
            run.append(stmt)
    flush_run()

    graph = TaskGraph(f"{entry}.tasks")
    result = PartitionResult(graph, program=program, entry=entry)
    for cluster in clusters:
        cost = sum(estimate_cost(s, weights, program).total
                   for s in cluster.stmts)
        node = graph.add_task(cluster.name, cost=max(cost, 1.0),
                              stmts=cluster.stmts)
        node.class_factor = _class_factors(cluster, program)
        result.clusters[cluster.name] = cluster
        if cluster.loop_info is not None:
            result.loop_infos[cluster.name] = cluster.loop_info
            if cluster.loop_info.classification.parallelizable():
                result.parallelizable_tasks.append(cluster.name)
        decisions += 1

    # Flow-dependence edges between clusters (earlier -> later).
    for i, earlier in enumerate(clusters):
        produced = earlier.defs()
        for later in clusters[i + 1:]:
            shared = produced & later.uses()
            if shared:
                words = sum(_array_words(program, func, name)
                            for name in shared)
                graph.connect(earlier.name, later.name, words=words,
                              label=",".join(sorted(shared)))
                decisions += 1
    result.tool_decisions = decisions
    return result


def _function_is_pure(program: Program, func: FuncDef) -> bool:
    """Conservative purity: no global/array/pointer writes, no impure calls."""
    global_names = {d.name for d in program.globals}
    for node in func.body.walk():
        if isinstance(node, Assign):
            if not isinstance(node.target, Ident):
                return False
            if node.target.name in global_names:
                return False
    return True


def _class_factors(cluster: Cluster, program: Program) -> Dict[PEClass, float]:
    """Coarse per-PE-class cost ratios from the operation mix."""
    base = None
    factors: Dict[PEClass, float] = {}
    for pe_class in PEClass:
        total = sum(estimate_cost(s, pe_class.weights, program).total
                    for s in cluster.stmts)
        if base is None:
            factors[pe_class] = 1.0
            base = max(total, 1e-9)
        else:
            factors[pe_class] = total / base
    return factors


# ---------------------------------------------------------------------------
# data-parallel expansion
# ---------------------------------------------------------------------------

def partition_data_parallel(result: PartitionResult, task_name: str,
                            k: int) -> TaskGraph:
    """Split loop task ``task_name`` into ``k`` data-parallel chunks.

    The loop must be classified DOALL or REDUCTION.  Returns a *new*
    task graph; the original is not modified.  Chunk tasks carry cloned
    loop statements with adjusted bounds so the code generator can emit
    runnable per-PE code.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    info = result.loop_infos.get(task_name)
    if info is None:
        raise KeyError(f"{task_name!r} is not a loop task")
    if not info.classification.parallelizable():
        raise ValueError(
            f"{task_name!r} is {info.classification.value}; reasons: "
            f"{info.reasons}")

    old = result.task_graph
    graph = TaskGraph(f"{old.name}+split({task_name},{k})")
    for name, node in old.nodes.items():
        if name != task_name:
            graph.add_node(TaskNode(name, node.cost, list(node.stmts),
                                    node.kind, node.preferred_pe,
                                    dict(node.class_factor)))
    original = old.nodes[task_name]
    chunk_names: List[str] = []
    bounds = _chunk_bounds(info, k)
    for index in range(k):
        chunk_name = f"{task_name}.c{index}"
        chunk_names.append(chunk_name)
        chunk_loop = _make_chunk_loop(info, bounds[index], index)
        node = TaskNode(chunk_name, original.cost / k, [chunk_loop],
                        kind="compute",
                        preferred_pe=original.preferred_pe,
                        class_factor=dict(original.class_factor))
        graph.add_node(node)

    combine_name: Optional[str] = None
    if info.classification == LoopClass.REDUCTION:
        combine_name = f"{task_name}.combine"
        combine_stmts = _make_combine_stmts(info, k, task_name)
        graph.add_node(TaskNode(combine_name, cost=max(2.0 * k, 1.0),
                                stmts=combine_stmts, kind="combine"))

    # Rewire edges.
    for edge in old.edges:
        if edge.src == task_name and edge.dst == task_name:
            continue
        if edge.src == task_name:
            src = combine_name or None
            if src is not None:
                graph.connect(src, edge.dst, edge.words, edge.label)
            else:
                for chunk in chunk_names:
                    graph.connect(chunk, edge.dst,
                                  max(1, edge.words // k), edge.label)
        elif edge.dst == task_name:
            for chunk in chunk_names:
                graph.connect(edge.src, chunk,
                              max(1, edge.words // k), edge.label)
        else:
            graph.connect(edge.src, edge.dst, edge.words, edge.label)
    if combine_name is not None:
        for chunk in chunk_names:
            graph.connect(chunk, combine_name, words=len(info.reductions),
                          label="partial")
    return graph


def _chunk_bounds(info: LoopInfo, k: int) -> List[Tuple[Expr, Expr]]:
    """Per-chunk (lower, upper) bound expressions."""
    lower, upper = info.lower, info.upper
    if isinstance(lower, IntLit) and isinstance(upper, IntLit) and \
            info.step == 1:
        low, high = lower.value, upper.value
        span = high - low
        base = span // k
        remainder = span % k
        bounds: List[Tuple[Expr, Expr]] = []
        cursor = low
        for index in range(k):
            size = base + (1 if index < remainder else 0)
            bounds.append((IntLit(value=cursor), IntLit(value=cursor + size)))
            cursor += size
        return bounds
    # Symbolic bounds: lo + i*(up-lo)/k .. lo + (i+1)*(up-lo)/k.
    bounds = []
    for index in range(k):
        def offset(which: int) -> Expr:
            span = BinOp(op="-", left=clone(upper), right=clone(lower))
            scaled = BinOp(op="/", left=BinOp(op="*", left=span,
                                              right=IntLit(value=which)),
                           right=IntLit(value=k))
            return BinOp(op="+", left=clone(lower), right=scaled)
        bounds.append((offset(index), offset(index + 1)))
    return bounds


def _make_chunk_loop(info: LoopInfo, bounds: Tuple[Expr, Expr],
                     chunk_index: int) -> For:
    """Clone the loop with chunk bounds; reduction targets are renamed to
    per-chunk partials (``s`` -> ``s__p<i>``)."""
    loop = clone(info.loop)
    low, high = bounds
    var = info.loop_var
    loop.init = Assign(target=Ident(name=var), value=clone(low))
    loop.test = BinOp(op="<", left=Ident(name=var), right=clone(high))
    loop.step = Assign(target=Ident(name=var), value=IntLit(value=1), op="+")
    for red_var in info.reductions:
        _rename_ident(loop.body, red_var, _partial_name(red_var, chunk_index))
    return loop


def _partial_name(var: str, chunk_index: int) -> str:
    return f"{var}__p{chunk_index}"


def _make_combine_stmts(info: LoopInfo, k: int, task_name: str) -> List[Stmt]:
    """``s = s op s__p0 op s__p1 ...`` for every reduction variable."""
    stmts: List[Stmt] = []
    for var, op in sorted(info.reductions.items()):
        for index in range(k):
            stmts.append(Assign(target=Ident(name=var),
                                value=Ident(name=_partial_name(var, index)),
                                op=op))
    return stmts


def _rename_ident(node, old: str, new: str) -> None:
    for child in node.walk():
        if isinstance(child, Ident) and child.name == old:
            child.name = new


# ---------------------------------------------------------------------------
# pipeline extraction
# ---------------------------------------------------------------------------

@dataclass
class PipelinePartition:
    """Stages of an outer (frame) loop, for pipelined execution."""

    task_graph: TaskGraph
    iterations_expr: Optional[Expr]
    loop_var: str
    stage_names: List[str] = field(default_factory=list)


def partition_pipeline(program: Program, entry: str = "main",
                       weights: Optional[CostWeights] = None) -> PipelinePartition:
    """Turn the body of the entry function's outermost loop into pipeline
    stages (one stage per top-level body statement group).

    Consecutive statements that exchange only scalars stay in one stage;
    a statement starting a new array-producing region opens a new stage.
    The resulting task graph is a chain with per-iteration semantics; the
    MVP executes it in streaming (pipelined) mode.
    """
    func = program.function(entry)
    weights = weights or CostWeights()
    outer: Optional[For] = None
    for stmt in func.body.stmts:
        if isinstance(stmt, For):
            outer = stmt
            break
    if outer is None:
        raise ValueError(f"{entry!r} has no outer loop to pipeline")

    info = analyze_loop(outer)
    stages: List[List[Stmt]] = []
    for stmt in outer.body.stmts:
        stages.append([stmt])
    # Merge adjacent stages that share no array traffic (cheap stages).
    merged: List[List[Stmt]] = []
    for stage in stages:
        if merged and not _stage_produces_array(merged[-1], program, func) \
                and not _stage_produces_array(stage, program, func):
            merged[-1].extend(stage)
        else:
            merged.append(stage)

    graph = TaskGraph(f"{entry}.pipeline")
    names: List[str] = []
    for index, stage_stmts in enumerate(merged):
        cost = sum(estimate_cost(s, weights, program).total
                   for s in stage_stmts)
        name = f"stage{index}"
        graph.add_task(name, cost=max(cost, 1.0), stmts=stage_stmts,
                       kind="stage")
        names.append(name)
    for earlier_index in range(len(merged)):
        produced: Set[str] = set()
        for stmt in merged[earlier_index]:
            for node in stmt.walk():
                if isinstance(node, (Assign, Decl)):
                    produced |= stmt_defs(node)
        for later_index in range(earlier_index + 1, len(merged)):
            used: Set[str] = set()
            for stmt in merged[later_index]:
                for node in stmt.walk():
                    if isinstance(node, Stmt):
                        used |= stmt_uses(node)
            shared = produced & used
            if shared:
                words = sum(_array_words(program, func, n) for n in shared)
                graph.connect(names[earlier_index], names[later_index],
                              words=words, label=",".join(sorted(shared)))
    return PipelinePartition(graph, info.upper, info.loop_var, names)


def _stage_produces_array(stmts: List[Stmt], program: Program,
                          func: FuncDef) -> bool:
    for stmt in stmts:
        for node in stmt.walk():
            if isinstance(node, Assign):
                for name in stmt_defs(node):
                    if _array_words(program, func, name) > 1:
                        return True
    return False


__all__ = ["Cluster", "PartitionResult", "PipelinePartition",
           "partition_data_parallel", "partition_function",
           "partition_pipeline"]
