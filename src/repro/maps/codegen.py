"""Code generation: task graphs back to per-PE C code (section IV).

"a code generation phase translates the task graphs into C codes for
compilation onto the respective PEs with their native compilers and OS
primitives."

Two generators:

- :func:`generate_data_parallel_code` -- produces a *runnable* mini-C
  program in which a split loop executes as per-chunk partial loops plus a
  combine step.  Running it through the interpreter and comparing against
  the sequential original is the semantic validation of the partitioning
  (chunks of a DOALL loop commute, so sequential chunk execution is
  observationally equivalent to parallel execution).
- :func:`generate_pipeline_code` -- emits the per-PE C sources for a
  pipeline partition: each stage becomes a function communicating through
  ``ch_read``/``ch_write`` runtime primitives (the OS-primitive glue the
  paper mentions); channel-based execution itself is exercised by the
  HOPES runtime (section V), which owns that programming model.
"""

from __future__ import annotations

import re
from typing import Dict, List, Set, Tuple

from repro.cir.clone import clone, clone_list
from repro.cir.codegen import emit
from repro.cir.nodes import (
    Assign, Block, Call, Decl, ExprStmt, FuncDef, Ident, IntLit,
    Program, Stmt,
)
from repro.cir.typesys import INT, ScalarType
from repro.maps.mapping import Mapping
from repro.maps.partition import PartitionResult, PipelinePartition
from repro.maps.taskgraph import TaskGraph

_PARTIAL_RE = re.compile(r"^(?P<base>.+)__p(?P<index>\d+)$")

_NEUTRAL = {"+": 0, "|": 0, "^": 0, "*": 1, "&": -1}


def generate_data_parallel_code(result: PartitionResult,
                                expanded: TaskGraph,
                                entry_name: str = "main_par") -> Tuple[Program, str]:
    """Assemble a runnable program from an expanded (split) task graph.

    The generated entry executes every task's statements in topological
    order: chunk loops run over their sub-ranges into per-chunk partials,
    then combine tasks merge partials -- byte-for-byte the code a shared
    memory PE would run, minus the thread-spawn boilerplate.
    """
    source_program = result.program
    if source_program is None:
        raise ValueError("partition result has no source program")
    original_entry = source_program.function(result.entry)

    generated = Program()
    generated.globals = clone_list(source_program.globals)
    for func in source_program.functions:
        if func.name != result.entry:
            generated.functions.append(clone(func))

    body: List[Stmt] = []
    # Declare reduction partials up front, initialized to the neutral
    # element of their combine operator.
    for name, op in sorted(_collect_partials(expanded).items()):
        body.append(Decl(type=INT, name=name,
                         init=IntLit(value=_NEUTRAL.get(op, 0))))
    for task_name in expanded.topological_order():
        node = expanded.nodes[task_name]
        body.extend(clone_list(node.stmts))

    entry = FuncDef(return_type=original_entry.return_type,
                    name=entry_name,
                    params=clone_list(original_entry.params),
                    body=Block(stmts=body))
    generated.functions.append(entry)
    return generated, entry_name


def _collect_partials(graph: TaskGraph) -> Dict[str, str]:
    """Partial-variable name -> combine operator, from the graph's code."""
    ops: Dict[str, str] = {}
    partial_names: Set[str] = set()
    for node in graph.nodes.values():
        for stmt in node.stmts:
            for child in stmt.walk():
                if isinstance(child, Ident) and _PARTIAL_RE.match(child.name):
                    partial_names.add(child.name)
        if node.kind == "combine":
            for stmt in node.stmts:
                if isinstance(stmt, Assign) and stmt.op and \
                        isinstance(stmt.value, Ident):
                    ops[stmt.value.name] = stmt.op
    return {name: ops.get(name, "+") for name in partial_names}


# ---------------------------------------------------------------------------
# pipeline code generation (per-PE sources)
# ---------------------------------------------------------------------------

def generate_pipeline_code(pipeline: PipelinePartition,
                           mapping: Mapping) -> Dict[str, str]:
    """Emit one C source file per PE for a pipeline partition.

    Each stage becomes ``void <stage>_task(void)`` whose body is the stage's
    statements bracketed by ``ch_read``/``ch_write`` calls for its in/out
    channels, plus a PE main loop dispatching its stages -- the shape of
    code MAPS hands to each PE's native compiler.
    """
    graph = pipeline.task_graph
    sources: Dict[str, List[str]] = {}
    for task_name in graph.topological_order():
        pe = mapping.pe_of(task_name)
        sources.setdefault(pe, [])
        func = _stage_function(graph, task_name)
        sources[pe].append(emit(func))
    rendered: Dict[str, str] = {}
    for pe, chunks in sources.items():
        tasks_on_pe = [t for t in graph.topological_order()
                       if mapping.pe_of(t) == pe]
        main_lines = [f"void pe_main(void) {{"]
        main_lines.append("    while (rt_running()) {")
        for task in tasks_on_pe:
            main_lines.append(f"        {task}_task();")
        main_lines.append("    }")
        main_lines.append("}")
        header = (f"/* generated by MAPS for PE {pe!r} "
                  f"({len(tasks_on_pe)} tasks) */\n")
        rendered[pe] = header + "\n".join(chunks) + "\n" + \
            "\n".join(main_lines) + "\n"
    return rendered


def _stage_function(graph: TaskGraph, task_name: str) -> FuncDef:
    node = graph.nodes[task_name]
    body: List[Stmt] = []
    for edge in graph.in_edges(task_name):
        body.append(ExprStmt(expr=Call(
            name="ch_read",
            args=[IntLit(value=_channel_id(graph, edge))])))
    body.extend(clone_list(node.stmts))
    for edge in graph.out_edges(task_name):
        body.append(ExprStmt(expr=Call(
            name="ch_write",
            args=[IntLit(value=_channel_id(graph, edge)),
                  IntLit(value=edge.words)])))
    return FuncDef(return_type=ScalarType("void"), name=f"{task_name}_task",
                   params=[], body=Block(stmts=body))


def _channel_id(graph: TaskGraph, edge) -> int:
    return graph.edges.index(edge)


def render_pe_sources(result: PartitionResult, expanded: TaskGraph,
                      mapping: Mapping) -> Dict[str, str]:
    """Per-PE C sources for a data-parallel mapping (for inspection and
    the E6 effort metrics)."""
    sources: Dict[str, List[str]] = {}
    for task_name in expanded.topological_order():
        pe = mapping.pe_of(task_name)
        node = expanded.nodes[task_name]
        func = FuncDef(return_type=ScalarType("void"),
                       name=f"{task_name.replace('.', '_')}_task",
                       params=[], body=Block(stmts=clone_list(node.stmts)))
        sources.setdefault(pe, []).append(emit(func))
    return {pe: f"/* generated by MAPS for PE {pe!r} */\n" + "\n".join(parts)
            for pe, parts in sources.items()}


__all__ = ["generate_data_parallel_code", "generate_pipeline_code",
           "render_pe_sources"]
