"""Concurrency graph: which applications can be active simultaneously.

"a concurrency graph is used to capture potential parallelism between
applications, in order to derive the worst case computational loads."

Nodes are application names; an edge means the two applications may run at
the same time.  The worst-case load of a mapping is the maximum, over all
cliques of concurrently-runnable applications, of the summed utilization
each clique places on every PE.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, FrozenSet, List, Set, Tuple

import networkx as nx


class ConcurrencyGraph:
    """Undirected may-run-concurrently graph over application names."""

    def __init__(self) -> None:
        self.graph = nx.Graph()

    def add_app(self, name: str) -> None:
        self.graph.add_node(name)

    def set_concurrent(self, app_a: str, app_b: str) -> None:
        if app_a == app_b:
            raise ValueError("an app is trivially concurrent with itself")
        self.graph.add_edge(app_a, app_b)

    def apps(self) -> List[str]:
        return sorted(self.graph.nodes)

    def concurrent(self, app_a: str, app_b: str) -> bool:
        return self.graph.has_edge(app_a, app_b)

    def scenarios(self) -> List[FrozenSet[str]]:
        """Maximal sets of applications that can all be active at once
        (maximal cliques)."""
        return [frozenset(c) for c in nx.find_cliques(self.graph)]

    def worst_case_load(self, app_pe_load: Dict[str, Dict[str, float]]) \
            -> Dict[str, float]:
        """Per-PE worst-case utilization over all concurrency scenarios.

        ``app_pe_load[app][pe]`` is the utilization app places on pe under
        the candidate mapping.  Returns ``pe -> max scenario load``.
        """
        worst: Dict[str, float] = {}
        for scenario in self.scenarios():
            load: Dict[str, float] = {}
            for app in scenario:
                for pe, value in app_pe_load.get(app, {}).items():
                    load[pe] = load.get(pe, 0.0) + value
            for pe, value in load.items():
                worst[pe] = max(worst.get(pe, 0.0), value)
        return worst

    def __len__(self) -> int:
        return self.graph.number_of_nodes()


__all__ = ["ConcurrencyGraph"]
