"""Task graphs: the intermediate representation between partitioning and
mapping (section IV).

A :class:`TaskNode` carries an abstract cost (scaled per PE class via the
coarse cost model) and the AST statements it owns; a :class:`TaskEdge`
carries the data volume flowing between tasks.  Task graphs are DAGs --
the fine-grained graphs MAPS forms after dataflow analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.cir.nodes import Stmt
from repro.core.serde import serde
from repro.maps.spec import PEClass


@dataclass
class TaskNode:
    """One schedulable task."""

    name: str
    cost: float = 1.0                      # abstract cycles on a 1.0x RISC
    stmts: List[Stmt] = field(default_factory=list)
    kind: str = "compute"                  # 'compute'|'split'|'combine'|'stage'
    preferred_pe: Optional[PEClass] = None
    # Per-PE-class cost multiplier (from the coarse architecture model);
    # effective cost on class k = cost * class_factor.get(k, 1.0).
    class_factor: Dict[PEClass, float] = field(default_factory=dict)

    def cost_on(self, pe_class: PEClass, freq: float = 1.0) -> float:
        factor = self.class_factor.get(pe_class, 1.0)
        return self.cost * factor / freq


@dataclass
class TaskEdge:
    """Data dependence with transfer volume in words."""

    src: str
    dst: str
    words: int = 1
    label: str = ""


@serde("task-graph")
class TaskGraph:
    """A DAG of tasks."""

    def __init__(self, name: str = "taskgraph") -> None:
        self.name = name
        self.nodes: Dict[str, TaskNode] = {}
        self.edges: List[TaskEdge] = []

    def add_task(self, name: str, cost: float = 1.0, **kwargs) -> TaskNode:
        if name in self.nodes:
            raise ValueError(f"duplicate task {name!r}")
        node = TaskNode(name, cost, **kwargs)
        self.nodes[name] = node
        return node

    def add_node(self, node: TaskNode) -> TaskNode:
        if node.name in self.nodes:
            raise ValueError(f"duplicate task {node.name!r}")
        self.nodes[node.name] = node
        return node

    def connect(self, src: str, dst: str, words: int = 1,
                label: str = "") -> TaskEdge:
        for endpoint in (src, dst):
            if endpoint not in self.nodes:
                raise KeyError(f"unknown task {endpoint!r}")
        edge = TaskEdge(src, dst, words, label)
        self.edges.append(edge)
        return edge

    # ------------------------------------------------------------------
    def predecessors(self, name: str) -> List[str]:
        return [e.src for e in self.edges if e.dst == name]

    def successors(self, name: str) -> List[str]:
        return [e.dst for e in self.edges if e.src == name]

    def in_edges(self, name: str) -> List[TaskEdge]:
        return [e for e in self.edges if e.dst == name]

    def out_edges(self, name: str) -> List[TaskEdge]:
        return [e for e in self.edges if e.src == name]

    def sources(self) -> List[str]:
        have_preds = {e.dst for e in self.edges}
        return [n for n in self.nodes if n not in have_preds]

    def sinks(self) -> List[str]:
        have_succs = {e.src for e in self.edges}
        return [n for n in self.nodes if n not in have_succs]

    def topological_order(self) -> List[str]:
        """Kahn's algorithm; raises on cycles (task graphs must be DAGs)."""
        in_degree = {name: 0 for name in self.nodes}
        for edge in self.edges:
            in_degree[edge.dst] += 1
        frontier = sorted(n for n, d in in_degree.items() if d == 0)
        order: List[str] = []
        while frontier:
            current = frontier.pop(0)
            order.append(current)
            for edge in self.out_edges(current):
                in_degree[edge.dst] -= 1
                if in_degree[edge.dst] == 0:
                    # Insert keeping frontier sorted for determinism.
                    index = 0
                    while index < len(frontier) and frontier[index] < edge.dst:
                        index += 1
                    frontier.insert(index, edge.dst)
        if len(order) != len(self.nodes):
            raise ValueError(f"task graph {self.name!r} has a cycle")
        return order

    def total_cost(self) -> float:
        return sum(node.cost for node in self.nodes.values())

    def critical_path_cost(self) -> float:
        """Longest cost path (communication ignored) -- the span."""
        longest: Dict[str, float] = {}
        for name in self.topological_order():
            node_cost = self.nodes[name].cost
            preds = self.predecessors(name)
            longest[name] = node_cost + max(
                (longest[p] for p in preds), default=0.0)
        return max(longest.values(), default=0.0)

    def __len__(self) -> int:
        return len(self.nodes)

    def __repr__(self) -> str:
        return (f"TaskGraph({self.name!r}, {len(self.nodes)} tasks, "
                f"{len(self.edges)} edges)")

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """Cost-model view as plain JSON (inverse of :meth:`from_dict`).

        Carries everything mapping and scheduling consume -- costs,
        kinds, class factors, preferences, edge volumes -- but NOT the
        owned AST statements: a rehydrated graph schedules identically
        yet cannot be code-generated.  That is the right trade for farm
        job configs, where the graph must travel as data.
        """
        return {
            "name": self.name,
            "nodes": [{"name": node.name, "cost": node.cost,
                       "kind": node.kind,
                       "preferred_pe": (node.preferred_pe.value
                                        if node.preferred_pe else None),
                       "class_factor": {
                           pe_class.value: factor for pe_class, factor
                           in sorted(node.class_factor.items(),
                                     key=lambda kv: kv[0].value)}}
                      for node in self.nodes.values()],
            "edges": [{"src": e.src, "dst": e.dst, "words": e.words,
                       "label": e.label} for e in self.edges],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "TaskGraph":
        graph = cls(name=data.get("name", "taskgraph"))
        for spec in data.get("nodes", ()):
            preferred = spec.get("preferred_pe")
            graph.add_task(
                spec["name"], cost=spec.get("cost", 1.0),
                kind=spec.get("kind", "compute"),
                preferred_pe=PEClass(preferred) if preferred else None,
                class_factor={PEClass(k): v for k, v in
                              spec.get("class_factor", {}).items()})
        for spec in data.get("edges", ()):
            graph.connect(spec["src"], spec["dst"],
                          words=spec.get("words", 1),
                          label=spec.get("label", ""))
        return graph


__all__ = ["TaskEdge", "TaskGraph", "TaskNode"]
