"""Application and platform specifications for MAPS.

Applications are "specified either as sequential C code or in the form of
pre-parallelized processes.  In addition, using some lightweight C
extensions, real-time properties such as latency and period as well as
preferred PE types can be optionally annotated."  The annotations live in
:class:`ApplicationSpec` rather than pragmas -- same information, honest
Python API.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from enum import Enum
from typing import List, Optional

from repro.cir.nodes import Program
from repro.cir.analysis.cost import CostWeights
from repro.core.serde import serde


class PEClass(Enum):
    """Processing-element classes of the coarse architecture model."""

    RISC = "risc"
    DSP = "dsp"
    VLIW = "vliw"
    ACCELERATOR = "accelerator"

    @property
    def weights(self) -> CostWeights:
        return CostWeights.for_pe_class(self.value)


class RTClass(Enum):
    """Real-time class of an application.

    "Hard real-time applications are scheduled statically, while soft and
    non-real-time applications are scheduled dynamically according to
    their priority in best effort manner."
    """

    HARD = "hard"
    SOFT = "soft"
    BEST_EFFORT = "best_effort"


@dataclass
class PESpec:
    """One processing element of the target platform."""

    name: str
    pe_class: PEClass = PEClass.RISC
    freq: float = 1.0  # speed multiplier

    def __post_init__(self) -> None:
        # Adversarial-config guard: a zero/negative/non-finite frequency
        # mis-simulates (division by freq everywhere) instead of failing;
        # the architecture generator will produce such corners, so they
        # must be rejected loudly at construction.
        if not isinstance(self.name, str) or not self.name:
            raise ValueError(f"PE name must be a non-empty string, "
                             f"got {self.name!r}")
        if not (isinstance(self.freq, (int, float))
                and math.isfinite(self.freq) and self.freq > 0):
            raise ValueError(f"PE {self.name!r}: freq must be a positive "
                             f"finite number, got {self.freq!r}")

    def cycles_for(self, abstract_cost: float) -> float:
        return abstract_cost / self.freq


@serde("platform-spec")
@dataclass
class PlatformSpec:
    """The predefined heterogeneous MPSoC platform MAPS targets."""

    name: str = "platform"
    pes: List[PESpec] = field(default_factory=list)
    channel_setup_cost: float = 10.0     # cycles per message
    channel_word_cost: float = 0.5       # cycles per word transferred
    scheduler_dispatch_cost: float = 50.0  # SW-OS task dispatch cycles

    def __post_init__(self) -> None:
        for label in ("channel_setup_cost", "channel_word_cost",
                      "scheduler_dispatch_cost"):
            value = getattr(self, label)
            if not (isinstance(value, (int, float))
                    and math.isfinite(value) and value >= 0):
                raise ValueError(f"{label} must be a non-negative finite "
                                 f"number, got {value!r}")
        # PEs handed in directly (bypassing add_pe) get the same
        # duplicate-name check the builder path enforces.
        names = [pe.name for pe in self.pes]
        if len(set(names)) != len(names):
            duplicate = next(n for n in names if names.count(n) > 1)
            raise ValueError(f"duplicate PE {duplicate!r}")

    def add_pe(self, name: str, pe_class: PEClass = PEClass.RISC,
               freq: float = 1.0) -> PESpec:
        if any(pe.name == name for pe in self.pes):
            raise ValueError(f"duplicate PE {name!r}")
        pe = PESpec(name, pe_class, freq)
        self.pes.append(pe)
        return pe

    def pe(self, name: str) -> PESpec:
        for pe in self.pes:
            if pe.name == name:
                return pe
        raise KeyError(f"no PE named {name!r}")

    def pes_of_class(self, pe_class: PEClass) -> List[PESpec]:
        return [pe for pe in self.pes if pe.pe_class == pe_class]

    def comm_cost(self, words: int) -> float:
        return self.channel_setup_cost + self.channel_word_cost * words

    @classmethod
    def symmetric(cls, n_pes: int, pe_class: PEClass = PEClass.RISC,
                  **kwargs) -> "PlatformSpec":
        platform = cls(name=f"smp{n_pes}", **kwargs)
        for index in range(n_pes):
            platform.add_pe(f"pe{index}", pe_class)
        return platform

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Plain-JSON form (inverse of :meth:`from_dict`), used by farm
        job configs to ship a platform to worker processes."""
        return {
            "name": self.name,
            "pes": [{"name": pe.name, "pe_class": pe.pe_class.value,
                     "freq": pe.freq} for pe in self.pes],
            "channel_setup_cost": self.channel_setup_cost,
            "channel_word_cost": self.channel_word_cost,
            "scheduler_dispatch_cost": self.scheduler_dispatch_cost,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "PlatformSpec":
        platform = cls(
            name=data.get("name", "platform"),
            channel_setup_cost=data.get("channel_setup_cost", 10.0),
            channel_word_cost=data.get("channel_word_cost", 0.5),
            scheduler_dispatch_cost=data.get("scheduler_dispatch_cost",
                                             50.0))
        for pe in data.get("pes", ()):
            platform.add_pe(pe["name"],
                            PEClass(pe.get("pe_class", "risc")),
                            pe.get("freq", 1.0))
        return platform


@dataclass
class ApplicationSpec:
    """One application entering the MAPS flow.

    Exactly one of ``program`` (sequential mini-C, to be partitioned from
    ``entry``) or ``task_graph`` (pre-parallelized processes) is given.
    """

    name: str
    program: Optional[Program] = None
    entry: str = "main"
    task_graph: Optional["TaskGraph"] = None  # noqa: F821 (late import)
    rt_class: RTClass = RTClass.BEST_EFFORT
    period: Optional[float] = None      # annotation: activation period
    latency: Optional[float] = None     # annotation: max end-to-end latency
    priority: int = 10                  # for dynamic best-effort scheduling
    preferred_pe: Optional[PEClass] = None

    def __post_init__(self) -> None:
        if (self.program is None) == (self.task_graph is None):
            raise ValueError(
                f"app {self.name!r}: give exactly one of program/task_graph")
        if self.rt_class == RTClass.HARD and self.period is None:
            raise ValueError(
                f"app {self.name!r}: hard real-time needs a period annotation")


__all__ = ["ApplicationSpec", "PEClass", "PESpec", "PlatformSpec", "RTClass"]
