"""Simulated-annealing task mapping: MAPS's second optimization algorithm.

Section IV says task graphs are mapped "using optimization algorithms"
(plural).  HEFT list scheduling (:func:`repro.maps.mapping.map_task_graph`)
is the fast constructive one; this module adds an iterative improver that
explores the assignment space with simulated annealing.  Its cost function
is the *exact* static schedule length of an assignment (list scheduling
with fixed placement), so the two mappers are directly comparable; the A5
ablation bench races them against random mapping.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.maps.mapping import Mapping, ScheduledTask
from repro.maps.spec import PlatformSpec
from repro.maps.taskgraph import TaskGraph


def evaluate_assignment(graph: TaskGraph, platform: PlatformSpec,
                        assignment: Dict[str, str]) -> Mapping:
    """Build the static schedule implied by a fixed task->PE assignment.

    Tasks run in topological order; on each PE they serialize in that
    order; cross-PE edges pay the platform communication cost.  Returns a
    full :class:`Mapping` with schedule and makespan.
    """
    pes = {pe.name: pe for pe in platform.pes}
    for task, pe_name in assignment.items():
        if pe_name not in pes:
            raise KeyError(f"unknown PE {pe_name!r} for task {task!r}")
    mapping = Mapping(graph, platform, assignment=dict(assignment))
    pe_free: Dict[str, float] = {name: 0.0 for name in pes}
    finish: Dict[str, float] = {}
    for task_name in graph.topological_order():
        node = graph.nodes[task_name]
        pe = pes[assignment[task_name]]
        ready = pe_free[pe.name]
        for edge in graph.in_edges(task_name):
            pred_finish = finish[edge.src]
            if assignment[edge.src] != pe.name:
                pred_finish += platform.comm_cost(edge.words)
            ready = max(ready, pred_finish)
        duration = node.cost_on(pe.pe_class, pe.freq)
        end = ready + duration
        mapping.schedule.append(ScheduledTask(task_name, pe.name, ready,
                                              end))
        pe_free[pe.name] = end
        finish[task_name] = end
        mapping.makespan = max(mapping.makespan, end)
    return mapping


@dataclass
class AnnealingReport:
    """Search trajectory of one annealing run."""

    best: Mapping
    initial_makespan: float
    iterations: int
    accepted_moves: int
    improved_moves: int
    history: List[float] = field(default_factory=list)


def map_task_graph_annealing(graph: TaskGraph, platform: PlatformSpec,
                             iterations: int = 2000,
                             start_temperature: Optional[float] = None,
                             cooling: float = 0.995,
                             seed: int = 0,
                             initial: Optional[Dict[str, str]] = None) -> AnnealingReport:
    """Simulated-annealing mapping.

    Moves: reassign one random task to a random PE (respecting
    ``preferred_pe`` when the platform has a PE of that class).  Standard
    Metropolis acceptance with geometric cooling.  Deterministic for a
    given seed.
    """
    if not platform.pes:
        raise ValueError("platform has no PEs")
    rng = random.Random(seed)
    tasks = list(graph.nodes)
    pe_names = [pe.name for pe in platform.pes]

    def candidate_pes(task_name: str) -> List[str]:
        node = graph.nodes[task_name]
        if node.preferred_pe is not None:
            preferred = [pe.name for pe in platform.pes
                         if pe.pe_class == node.preferred_pe]
            if preferred:
                return preferred
        return pe_names

    if initial is None:
        current = {task: rng.choice(candidate_pes(task)) for task in tasks}
    else:
        current = dict(initial)
    current_mapping = evaluate_assignment(graph, platform, current)
    best_mapping = current_mapping
    initial_makespan = current_mapping.makespan

    temperature = start_temperature
    if temperature is None:
        temperature = max(current_mapping.makespan * 0.1, 1.0)

    report = AnnealingReport(best_mapping, initial_makespan, iterations, 0, 0)
    current_cost = current_mapping.makespan
    for _step in range(iterations):
        task = rng.choice(tasks)
        options = [pe for pe in candidate_pes(task) if pe != current[task]]
        if not options:
            continue
        new_pe = rng.choice(options)
        trial = dict(current)
        trial[task] = new_pe
        trial_mapping = evaluate_assignment(graph, platform, trial)
        delta = trial_mapping.makespan - current_cost
        accept = delta <= 0 or \
            rng.random() < pow(2.718281828, -delta / max(temperature, 1e-9))
        if accept:
            current = trial
            current_cost = trial_mapping.makespan
            report.accepted_moves += 1
            if trial_mapping.makespan < best_mapping.makespan:
                best_mapping = trial_mapping
                report.improved_moves += 1
        temperature *= cooling
        report.history.append(current_cost)
    report.best = best_mapping
    return report


def annealing_restart_job(config: Dict[str, object], seed: int) -> Dict[str, object]:
    """Farm job: one annealing restart (pure function of config + seed).

    ``config`` carries the graph and platform as plain dicts
    (:meth:`TaskGraph.to_dict` / :meth:`PlatformSpec.to_dict`) plus the
    annealing knobs; the result is the restart's best assignment and
    trajectory summary as plain JSON.
    """
    graph = TaskGraph.from_dict(config["graph"])
    platform = PlatformSpec.from_dict(config["platform"])
    report = map_task_graph_annealing(
        graph, platform,
        iterations=config.get("iterations", 2000),
        start_temperature=config.get("start_temperature"),
        cooling=config.get("cooling", 0.995),
        seed=seed)
    return {
        "seed": seed,
        "makespan": report.best.makespan,
        "assignment": dict(sorted(report.best.assignment.items())),
        "initial_makespan": report.initial_makespan,
        "accepted_moves": report.accepted_moves,
        "improved_moves": report.improved_moves,
    }


@dataclass
class RestartReport:
    """Outcome of a multi-restart annealing campaign."""

    best: Mapping
    best_seed: int
    runs: List[Dict[str, object]] = field(default_factory=list)

    @property
    def makespans(self) -> List[float]:
        return [run["makespan"] for run in self.runs]


def map_task_graph_annealing_restarts(
        graph: TaskGraph, platform: PlatformSpec, restarts: int = 4,
        iterations: int = 2000, start_temperature: Optional[float] = None,
        cooling: float = 0.995, base_seed: int = 0,
        executor: Optional[object] = None, **farm: object) -> RestartReport:
    """Best-of-N annealing: independent restarts from seeds
    ``base_seed .. base_seed+restarts-1``.

    Restarts are independent pure functions of (config, seed), so they
    run as a farm campaign; with an :class:`repro.farm.Executor` -- or
    the uniform farm keywords (``jobs=``, ``backend=``, ``cache=``,
    ...) -- they shard across workers (and hit the result cache), with
    neither they run in-process; all paths produce the identical
    report.  The winner is the lowest makespan, ties broken by lowest
    seed.
    """
    from repro.farm.engine import Campaign, resolve_executor

    if restarts < 1:
        raise ValueError(f"restarts must be >= 1, got {restarts}")
    config = {"graph": graph.to_dict(), "platform": platform.to_dict(),
              "iterations": iterations,
              "start_temperature": start_temperature, "cooling": cooling}
    campaign = Campaign.build("annealing-restarts",
                              executor=resolve_executor(executor, **farm))
    for seed in range(base_seed, base_seed + restarts):
        campaign.add(annealing_restart_job, config=config, seed=seed,
                     name=f"anneal[seed={seed}]")
    runs = campaign.run().raise_on_failure().results
    winner = min(runs, key=lambda run: (run["makespan"], run["seed"]))
    best = evaluate_assignment(graph, platform,
                               dict(winner["assignment"]))
    return RestartReport(best=best, best_seed=winner["seed"], runs=runs)


def map_task_graph_random(graph: TaskGraph, platform: PlatformSpec,
                          tries: int = 50, seed: int = 0) -> Mapping:
    """Random-restart baseline: best of ``tries`` random assignments."""
    rng = random.Random(seed)
    pe_names = [pe.name for pe in platform.pes]
    best: Optional[Mapping] = None
    for _ in range(tries):
        assignment = {task: rng.choice(pe_names) for task in graph.nodes}
        mapping = evaluate_assignment(graph, platform, assignment)
        if best is None or mapping.makespan < best.makespan:
            best = mapping
    assert best is not None
    return best


__all__ = ["AnnealingReport", "RestartReport", "annealing_restart_job",
           "evaluate_assignment", "map_task_graph_annealing",
           "map_task_graph_annealing_restarts", "map_task_graph_random"]
