"""Time-shared, space-shared and hybrid OS scheduling (section II).

Section II predicts applications will need two kinds of computing
resources:

- "a time-slice of a time-shared core" for sequential code, and
- "allocation of multiple space-shared cores completely dedicated to
  executing a single application" for parallel code,

and calls for "scheduling algorithms that can in a reactive way mitigate
multiple requests for parallel computing resources as well [as] sequential
computing resources".  This module implements all three policies on the
discrete-event kernel so the E3 bench can compare them on a mixed
workload:

- :func:`run_time_shared` -- everything round-robins on every core;
- :func:`run_space_shared` -- every app gets dedicated cores, queued EDF;
- :func:`run_hybrid` -- sequential apps time-share a small pool, parallel
  (real-time) apps space-share the rest;
- :func:`run_resilient` -- time-shared scheduling that survives injected
  core crashes/hangs: per-core heartbeat watchdogs detect a silent core,
  restart its in-flight task from the last slice boundary and migrate it
  to a surviving core (section II's "reactive" resource re-allocation).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Deque, Dict, List, Optional, Sequence

from repro.desim import Delay, Event, Simulator, WaitEvent
from repro.desim.watchdog import Watchdog
from repro.manycore.machine import Core, Machine
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import TraceSink

if TYPE_CHECKING:  # pragma: no cover - typing only, no runtime dependency
    from repro.faults import FaultInjector


@dataclass
class AppSpec:
    """A one-shot application job.

    ``work`` is total base-core work units; a parallel app divides it
    evenly over ``threads`` threads.  ``thread_isas`` optionally pins each
    thread to an ISA (the heterogeneous a-priori partitioning of E1).
    ``deadline`` is relative to ``arrival``; ``rt`` marks apps whose
    deadline the OS must honour.
    """

    name: str
    work: float
    threads: int = 1
    arrival: float = 0.0
    deadline: Optional[float] = None
    rt: bool = False
    thread_isas: Optional[List[str]] = None
    # Optional recurrence: expand with `expand_periodic` before scheduling.
    period: Optional[float] = None

    def __post_init__(self) -> None:
        if self.work <= 0 or self.threads < 1:
            raise ValueError(f"app {self.name!r}: invalid work/threads")
        if self.thread_isas is not None and \
                len(self.thread_isas) != self.threads:
            raise ValueError(f"app {self.name!r}: thread_isas length "
                             f"must equal threads")

    @property
    def sequential(self) -> bool:
        return self.threads == 1

    def isa_of_thread(self, index: int) -> Optional[str]:
        if self.thread_isas is None:
            return None
        return self.thread_isas[index]


@dataclass
class AppResult:
    """Completion record of one app (``finish`` is ``inf`` when the app
    could never be placed, e.g. an ISA-pinned thread with no matching
    core)."""

    name: str
    arrival: float
    finish: float
    deadline: Optional[float]
    rt: bool
    threads: int = 1

    @property
    def sequential(self) -> bool:
        return self.threads == 1

    @property
    def response_time(self) -> float:
        return self.finish - self.arrival

    @property
    def deadline_met(self) -> Optional[bool]:
        if self.deadline is None and self.finish != float("inf"):
            return None
        if self.finish == float("inf"):
            return False
        return self.finish <= self.arrival + self.deadline + 1e-9


@dataclass
class ScheduleOutcome:
    """Aggregate result of one scheduling-policy run.

    ``metrics`` is the run's :class:`~repro.obs.MetricsRegistry`
    (context switches, migrations, ready-queue high-water mark, response
    time histogram); the scalar fields below are kept as convenience
    views of the same data.
    """

    policy: str
    results: List[AppResult] = field(default_factory=list)
    makespan: float = 0.0
    context_switches: int = 0
    metrics: Optional[MetricsRegistry] = None

    @property
    def deadline_misses(self) -> int:
        return sum(1 for r in self.results if r.deadline_met is False)

    @property
    def rt_deadline_misses(self) -> int:
        return sum(1 for r in self.results
                   if r.rt and r.deadline_met is False)

    def mean_response(self, sequential_only: bool = False) -> float:
        rows = [r for r in self.results
                if not sequential_only or r.sequential]
        if not rows:
            return 0.0
        return sum(r.response_time for r in rows) / len(rows)

    @property
    def unplaceable(self) -> int:
        return sum(1 for r in self.results if r.finish == float("inf"))

    def result_of(self, name: str) -> AppResult:
        for result in self.results:
            if result.name == name:
                return result
        raise KeyError(name)


class _Thread:
    def __init__(self, app: "_AppState", index: int, work: float,
                 isa: Optional[str]) -> None:
        self.app = app
        self.index = index
        self.remaining = work
        self.isa = isa
        self.last_core: Optional[int] = None  # migration detection


class _AppState:
    def __init__(self, spec: AppSpec) -> None:
        self.spec = spec
        self.unfinished = spec.threads
        self.finish: Optional[float] = None

    def make_threads(self) -> List[_Thread]:
        share = self.spec.work / self.spec.threads
        return [_Thread(self, i, share, self.spec.isa_of_thread(i))
                for i in range(self.spec.threads)]


def _record(outcome: ScheduleOutcome, state: _AppState, now: float) -> None:
    spec = state.spec
    outcome.results.append(AppResult(spec.name, spec.arrival, now,
                                     spec.deadline, spec.rt, spec.threads))
    if now != float("inf"):
        outcome.makespan = max(outcome.makespan, now)
        if outcome.metrics is not None:
            outcome.metrics.counter("os.completions").inc()
            outcome.metrics.histogram("os.response_time").observe(
                now - spec.arrival)


# ---------------------------------------------------------------------------
# time-shared round-robin
# ---------------------------------------------------------------------------

def run_time_shared(machine: Machine, apps: Sequence[AppSpec],
                    quantum: float = 1.0,
                    ctx_overhead: float = 0.01,
                    sink: Optional[TraceSink] = None,
                    metrics: Optional[MetricsRegistry] = None) -> ScheduleOutcome:
    """Global round-robin over all cores with a fixed quantum.

    With a ``sink`` installed every executed time slice becomes a span on
    the ``os/core<N>`` track and the ready-queue depth a counter series;
    ``metrics`` (created if omitted) accumulates context switches,
    migrations and the ready-queue high-water mark.
    """
    sim = Simulator()
    metrics = metrics if metrics is not None else MetricsRegistry()
    outcome = ScheduleOutcome("time_shared", metrics=metrics)
    ready: Deque[_Thread] = deque()
    work_event = Event("work")
    remaining_apps = len(apps)
    ready_gauge = metrics.gauge("os.ready_depth")
    switch_counter = metrics.counter("os.context_switches")
    migration_counter = metrics.counter("os.migrations")

    def note_ready_depth() -> None:
        ready_gauge.set(len(ready))
        if sink is not None:
            sink.counter("ready_depth", len(ready), track="os", ts=sim.now)

    def arrival_proc(spec: AppSpec):
        if spec.arrival > 0:
            yield Delay(spec.arrival)
        state = _AppState(spec)
        for thread in state.make_threads():
            ready.append(thread)
        note_ready_depth()
        work_event.trigger(None)

    def core_proc(core: Core):
        nonlocal remaining_apps
        while remaining_apps > 0:
            thread = _pop_matching(ready, core.isa)
            if thread is None:
                yield WaitEvent(work_event)
                continue
            note_ready_depth()
            if thread.last_core is not None and \
                    thread.last_core != core.core_id:
                migration_counter.inc()
            thread.last_core = core.core_id
            slice_work = min(quantum * core.freq, thread.remaining)
            duration = slice_work / core.freq + ctx_overhead
            outcome.context_switches += 1
            switch_counter.inc()
            if sink is not None:
                sink.complete(
                    f"{thread.app.spec.name}.t{thread.index}",
                    ts=sim.now, dur=duration,
                    track=f"os/core{core.core_id}")
            yield Delay(duration)
            thread.remaining -= slice_work
            if thread.remaining <= 1e-12:
                thread.app.unfinished -= 1
                if thread.app.unfinished == 0:
                    _record(outcome, thread.app, sim.now)
                    remaining_apps -= 1
                    work_event.trigger(None)  # wake idle cores to re-check exit
            else:
                ready.append(thread)
                note_ready_depth()
                work_event.trigger(None)

    for spec in apps:
        sim.spawn(arrival_proc(spec), name=f"arrive.{spec.name}")
    for core in machine.cores:
        sim.spawn(core_proc(core), name=f"core{core.core_id}")
    sim.run()
    return outcome


def expand_periodic(apps: Sequence[AppSpec], horizon: float) -> List[AppSpec]:
    """Explode periodic app specs into the job stream up to ``horizon``.

    Section II's OS serves *recurring* real-time work; the one-shot
    schedulers above stay simple by scheduling jobs, and this helper turns
    ``AppSpec(period=...)``-annotated specs into per-release job instances
    (``name#k``, arrival ``k * period``, the spec's relative deadline).
    Specs without a period pass through unchanged.
    """
    jobs: List[AppSpec] = []
    for spec in apps:
        period = getattr(spec, "period", None)
        if period is None:
            jobs.append(spec)
            continue
        if period <= 0:
            raise ValueError(f"app {spec.name!r}: period must be positive")
        release = 0.0
        index = 0
        while release < horizon:
            jobs.append(AppSpec(f"{spec.name}#{index}", spec.work,
                                spec.threads, spec.arrival + release,
                                spec.deadline, spec.rt,
                                list(spec.thread_isas)
                                if spec.thread_isas else None))
            release += period
            index += 1
    return jobs


def _pop_matching(ready: Deque[_Thread], isa: str) -> Optional[_Thread]:
    for index, thread in enumerate(ready):
        if thread.isa is None or thread.isa == isa:
            del ready[index]
            return thread
    return None


# ---------------------------------------------------------------------------
# space-shared gang allocation (EDF among waiting apps)
# ---------------------------------------------------------------------------

def run_space_shared(machine: Machine, apps: Sequence[AppSpec],
                     dispatch_overhead: float = 0.01,
                     sink: Optional[TraceSink] = None,
                     metrics: Optional[MetricsRegistry] = None) -> ScheduleOutcome:
    """Dedicated-core gang allocation; waiting apps served EDF-first."""
    sim = Simulator()
    metrics = metrics if metrics is not None else MetricsRegistry()
    outcome = ScheduleOutcome("space_shared", metrics=metrics)
    free_cores: List[Core] = list(machine.cores)
    waiting: List[_AppState] = []
    change = Event("change")
    remaining_apps = len(apps)
    waiting_gauge = metrics.gauge("os.waiting_apps")
    dispatch_counter = metrics.counter("os.context_switches")

    def note_waiting() -> None:
        waiting_gauge.set(len(waiting))
        if sink is not None:
            sink.counter("waiting_apps", len(waiting), track="os",
                         ts=sim.now)

    def arrival_proc(spec: AppSpec):
        if spec.arrival > 0:
            yield Delay(spec.arrival)
        waiting.append(_AppState(spec))
        note_waiting()
        change.trigger(None)

    def _edf_key(state: _AppState):
        deadline = state.spec.deadline
        absolute = (state.spec.arrival + deadline) if deadline is not None \
            else float("inf")
        return (absolute, state.spec.arrival, state.spec.name)

    def try_place() -> Optional[tuple]:
        for state in sorted(waiting, key=_edf_key):
            chosen = _pick_cores(free_cores, state.spec)
            if chosen is not None:
                waiting.remove(state)
                note_waiting()
                return state, chosen
        return None

    def thread_proc(state: _AppState, thread: _Thread, core: Core):
        nonlocal remaining_apps
        duration = dispatch_overhead + thread.remaining / core.freq
        if sink is not None:
            sink.complete(f"{state.spec.name}.t{thread.index}",
                          ts=sim.now, dur=duration,
                          track=f"os/core{core.core_id}")
        yield Delay(duration)
        state.unfinished -= 1
        free_cores.append(core)
        if state.unfinished == 0:
            _record(outcome, state, sim.now)
            remaining_apps -= 1
        change.trigger(None)

    def allocator_proc():
        while remaining_apps > 0:
            placement = try_place()
            if placement is None:
                yield WaitEvent(change)
                continue
            state, chosen = placement
            for thread, core in zip(state.make_threads(), chosen):
                sim.spawn(thread_proc(state, thread, core),
                          name=f"{state.spec.name}.t{thread.index}")
            outcome.context_switches += len(chosen)
            dispatch_counter.inc(len(chosen))

    for spec in apps:
        sim.spawn(arrival_proc(spec), name=f"arrive.{spec.name}")
    sim.spawn(allocator_proc(), name="allocator")
    sim.run()
    # Apps still waiting when the system went idle can never be placed
    # (e.g. ISA-pinned threads with no matching core).
    for state in waiting:
        _record(outcome, state, float("inf"))
    return outcome


def _pick_cores(free_cores: List[Core], spec: AppSpec) -> Optional[List[Core]]:
    """Reserve one free core per thread, honouring per-thread ISA pins."""
    pool = list(free_cores)
    chosen: List[Core] = []
    for index in range(spec.threads):
        isa = spec.isa_of_thread(index)
        found = None
        for core in pool:
            if isa is None or core.isa == isa:
                found = core
                break
        if found is None:
            return None
        pool.remove(found)
        chosen.append(found)
    for core in chosen:
        free_cores.remove(core)
    return chosen


# ---------------------------------------------------------------------------
# hybrid: sequential apps time-share a pool, parallel apps space-share
# ---------------------------------------------------------------------------

def run_hybrid(machine: Machine, apps: Sequence[AppSpec],
               ts_cores: int = 1, quantum: float = 1.0,
               ctx_overhead: float = 0.01,
               dispatch_overhead: float = 0.01,
               sink: Optional[TraceSink] = None,
               metrics: Optional[MetricsRegistry] = None) -> ScheduleOutcome:
    """Hybrid policy: ``ts_cores`` cores round-robin the sequential apps,
    the remaining cores are gang-allocated (EDF) to parallel apps.

    This is the section-II proposal verbatim: sequential needs met with a
    time-slice of a time-shared core, parallel needs met with dedicated
    space-shared cores, managed reactively.
    """
    if not 0 < ts_cores < machine.n_cores:
        raise ValueError("ts_cores must leave at least one space-shared core")
    sequential = [a for a in apps if a.sequential]
    parallel = [a for a in apps if not a.sequential]
    ts_machine = Machine(ts_cores, cores=machine.cores[:ts_cores])
    ss_machine = Machine(machine.n_cores - ts_cores,
                         cores=machine.cores[ts_cores:])
    metrics = metrics if metrics is not None else MetricsRegistry()
    ts_outcome = run_time_shared(ts_machine, sequential, quantum,
                                 ctx_overhead, sink=sink, metrics=metrics)
    ss_outcome = run_space_shared(ss_machine, parallel, dispatch_overhead,
                                  sink=sink, metrics=metrics)
    merged = ScheduleOutcome("hybrid", metrics=metrics)
    merged.results = ts_outcome.results + ss_outcome.results
    merged.makespan = max(ts_outcome.makespan, ss_outcome.makespan)
    merged.context_switches = (ts_outcome.context_switches +
                               ss_outcome.context_switches)
    return merged


# ---------------------------------------------------------------------------
# resilient time-sharing: heartbeat watchdogs, task restart + migration
# ---------------------------------------------------------------------------

def run_resilient(machine: Machine, apps: Sequence[AppSpec],
                  quantum: float = 1.0,
                  ctx_overhead: float = 0.01,
                  heartbeat_timeout: Optional[float] = None,
                  injector: Optional["FaultInjector"] = None,
                  sink: Optional[TraceSink] = None,
                  metrics: Optional[MetricsRegistry] = None) -> ScheduleOutcome:
    """Round-robin time sharing that survives core crashes and hangs.

    Every core gets a :class:`~repro.desim.Watchdog` armed while it is
    executing slices and kicked at each slice boundary.  An ``injector``
    (see :mod:`repro.faults`) may crash a core (its process dies
    silently, mid-slice) or hang it (the process stalls at the next
    slice boundary without dying).  Either way the heartbeat stops, the
    watchdog bites, and recovery runs: the core is reaped, its in-flight
    thread is rolled back to the last slice boundary and re-queued, and
    a surviving core picks it up -- task restart plus migration, visible
    as ``recover.core_dead`` trace instants, ``os.core_deaths`` /
    ``os.task_restarts`` counters and the ``os.mttr`` histogram
    (fault-to-recovery sim time).

    ``heartbeat_timeout`` must exceed one slice duration
    (``quantum + ctx_overhead``); it defaults to three slice durations.
    A plan that kills every core leaves the remaining apps recorded
    with ``finish == inf`` rather than deadlocking.
    """
    slice_duration = quantum + ctx_overhead
    if heartbeat_timeout is None:
        heartbeat_timeout = 3.0 * slice_duration
    if heartbeat_timeout <= slice_duration:
        raise ValueError(
            f"heartbeat_timeout ({heartbeat_timeout}) must exceed one "
            f"slice duration ({slice_duration}) or every slice bites")
    sim = injector.sim if injector is not None else Simulator()
    metrics = metrics if metrics is not None else (
        injector.metrics if injector is not None else MetricsRegistry())
    if sink is None and injector is not None:
        sink = injector.sink
    outcome = ScheduleOutcome("resilient", metrics=metrics)
    ready: Deque[_Thread] = deque()
    states: List[_AppState] = []
    work_event = Event("work")
    remaining_apps = len(apps)
    switch_counter = metrics.counter("os.context_switches")
    migration_counter = metrics.counter("os.migrations")
    restart_counter = metrics.counter("os.task_restarts")
    death_counter = metrics.counter("os.core_deaths")
    mttr_hist = metrics.histogram("os.mttr")

    core_procs: Dict[int, "Any"] = {}
    watchdogs: Dict[int, Watchdog] = {}
    dead: Dict[int, bool] = {}
    hung: Dict[int, bool] = {}
    fault_at: Dict[int, float] = {}
    # Per-core in-flight slice state, for restart-from-slice-boundary.
    current: Dict[int, Optional[_Thread]] = {}
    slice_start_remaining: Dict[int, float] = {}

    def arrival_proc(spec: AppSpec):
        if spec.arrival > 0:
            yield Delay(spec.arrival)
        state = _AppState(spec)
        states.append(state)
        for thread in state.make_threads():
            ready.append(thread)
        work_event.trigger(None)

    def make_bite(core_id: int):
        def bite(wd: Watchdog) -> None:
            proc = core_procs.get(core_id)
            if proc is not None and proc.alive:
                sim.kill(proc)
            dead[core_id] = True
            death_counter.inc()
            thread = current.get(core_id)
            current[core_id] = None
            # MTTR from the injected fault time when known, else from
            # the last observed heartbeat (the honest detector view).
            mttr = sim.now - fault_at.get(core_id,
                                          wd.deadline - wd.timeout)
            mttr_hist.observe(mttr)
            if thread is not None:
                thread.remaining = slice_start_remaining.get(
                    core_id, thread.remaining)
                ready.append(thread)
                restart_counter.inc()
                work_event.trigger(None)
            if sink is not None:
                sink.instant("recover.core_dead", track="os", ts=sim.now,
                             core=core_id, mttr=mttr,
                             task_restarted=thread is not None)
            if injector is not None:
                injector.note_recovery("core_reap", mttr=mttr,
                                       core=core_id,
                                       task_restarted=thread is not None)
        return bite

    def make_crash_handler(core_id: int):
        def crash(spec) -> bool:
            if dead.get(core_id):
                return False
            fault_at[core_id] = sim.now
            proc = core_procs.get(core_id)
            if proc is not None and proc.alive:
                sim.kill(proc)
            wd = watchdogs[core_id]
            if not wd.armed:
                # Crashed while idle: nothing in flight to recover, but
                # the core must still be reaped or it silently vanishes.
                wd.start()
            return True
        return crash

    def make_hang_handler(core_id: int):
        def hang(spec) -> bool:
            if dead.get(core_id) or hung.get(core_id):
                return False
            fault_at[core_id] = sim.now
            hung[core_id] = True
            wd = watchdogs[core_id]
            if not wd.armed:
                wd.start()  # an idle hung core must still be detected
            return True
        return hang

    def core_proc(core: Core):
        nonlocal remaining_apps
        core_id = core.core_id
        wd = watchdogs[core_id]
        hang_forever = Event(f"core{core_id}.hang")
        while remaining_apps > 0 and not dead.get(core_id):
            if hung.get(core_id):
                # Hung: alive but unresponsive.  Keep the watchdog armed
                # and stop kicking -- the bite reaps this process.
                if not wd.armed:
                    wd.start()
                yield WaitEvent(hang_forever)
                continue  # pragma: no cover - hang_forever never fires
            thread = _pop_matching(ready, core.isa)
            if thread is None:
                # Idle cores disarm their watchdog (no heartbeat needed:
                # an idle core holds no work to lose) and sleep.
                wd.stop()
                yield WaitEvent(work_event)
                continue
            if wd.armed:
                wd.kick()
            else:
                wd.start()
            if thread.last_core is not None and \
                    thread.last_core != core.core_id:
                migration_counter.inc()
            thread.last_core = core.core_id
            current[core_id] = thread
            slice_start_remaining[core_id] = thread.remaining
            slice_work = min(quantum * core.freq, thread.remaining)
            duration = slice_work / core.freq + ctx_overhead
            outcome.context_switches += 1
            switch_counter.inc()
            if sink is not None:
                sink.complete(
                    f"{thread.app.spec.name}.t{thread.index}",
                    ts=sim.now, dur=duration,
                    track=f"os/core{core.core_id}")
            yield Delay(duration)
            wd.kick()  # slice completed: proof of liveness
            current[core_id] = None
            thread.remaining -= slice_work
            if thread.remaining <= 1e-12:
                thread.app.unfinished -= 1
                if thread.app.unfinished == 0:
                    thread.app.finish = sim.now
                    _record(outcome, thread.app, sim.now)
                    remaining_apps -= 1
                    work_event.trigger(None)
            else:
                ready.append(thread)
                work_event.trigger(None)
        wd.stop()

    for core in machine.cores:
        watchdogs[core.core_id] = Watchdog(
            sim, heartbeat_timeout, make_bite(core.core_id),
            name=f"core{core.core_id}.watchdog", start=False)
        if injector is not None:
            injector.register("core_crash", core.core_id,
                              make_crash_handler(core.core_id))
            injector.register("core_hang", core.core_id,
                              make_hang_handler(core.core_id))
    for spec in apps:
        sim.spawn(arrival_proc(spec), name=f"arrive.{spec.name}")
    for core in machine.cores:
        core_procs[core.core_id] = sim.spawn(core_proc(core),
                                             name=f"core{core.core_id}")
    sim.run()
    # Threads stranded with no surviving core: the app can never finish.
    for state in states:
        if state.finish is None and state.unfinished > 0:
            _record(outcome, state, float("inf"))
    return outcome


__all__ = ["AppResult", "AppSpec", "ScheduleOutcome", "expand_periodic",
           "run_hybrid", "run_resilient", "run_space_shared",
           "run_time_shared"]
