"""Per-core frequency governor (section II).

"The frequency at which each core executes shall be modifiable at a
fine-grain level during program execution and according to the needs of the
executing application(s)" -- in particular, boosting the core that runs a
sequential phase mitigates Amdahl's law for legacy single-threaded code.

The governor enforces the machine's power budget: boosting one core may
require throttling others (a simple sum-of-frequencies budget model).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.manycore.machine import Core, Machine


def amdahl_speedup(n_cores: int, serial_fraction: float,
                   serial_boost: float = 1.0) -> float:
    """Analytic speedup of an app with the given serial fraction on
    ``n_cores``, with the serial phase boosted by ``serial_boost``.

    speedup = 1 / (s / boost + (1 - s) / n)
    """
    if not 0.0 <= serial_fraction <= 1.0:
        raise ValueError("serial_fraction must be in [0, 1]")
    if n_cores < 1 or serial_boost <= 0:
        raise ValueError("invalid core count or boost")
    serial = serial_fraction / serial_boost
    parallel = (1.0 - serial_fraction) / n_cores
    return 1.0 / (serial + parallel)


@dataclass
class BoostLease:
    """A granted frequency boost, to be released when the phase ends."""

    core: Core
    previous_freq: float
    throttled: List[Tuple[Core, float]] = field(default_factory=list)


class FrequencyGovernor:
    """Reactive frequency manager over one machine.

    :meth:`boost` raises one core's frequency for a sequential phase,
    throttling idle cores if needed to stay inside the power budget;
    :meth:`release` restores the previous state.
    """

    def __init__(self, machine: Machine) -> None:
        self.machine = machine
        self.boosts_granted = 0
        self.boosts_denied = 0

    def headroom(self) -> float:
        if self.machine.power_budget is None:
            return float("inf")
        return self.machine.power_budget - self.machine.total_frequency

    def boost(self, core: Core, target_freq: float,
              throttleable: Optional[List[Core]] = None) -> Optional[BoostLease]:
        """Try to raise ``core`` to ``target_freq``.

        Returns a :class:`BoostLease` on success (restore with
        :meth:`release`), or ``None`` when the budget cannot accommodate
        the boost even after throttling the given idle cores to 0.1x.
        """
        if target_freq > core.max_freq + 1e-12:
            self.boosts_denied += 1
            return None
        lease = BoostLease(core, core.freq)
        needed = target_freq - core.freq
        if self.machine.power_budget is not None:
            available = self.headroom()
            candidates = [c for c in (throttleable or [])
                          if c.core_id != core.core_id]
            index = 0
            while available < needed and index < len(candidates):
                victim = candidates[index]
                reclaim = victim.freq - 0.1
                if reclaim > 0:
                    lease.throttled.append((victim, victim.freq))
                    victim.freq = 0.1
                    available += reclaim
                index += 1
            if available < needed - 1e-12:
                for victim, old in lease.throttled:
                    victim.freq = old
                self.boosts_denied += 1
                return None
        core.freq = target_freq
        self.machine.check_power()
        self.boosts_granted += 1
        return lease

    def release(self, lease: BoostLease) -> None:
        lease.core.freq = lease.previous_freq
        for victim, old in lease.throttled:
            victim.freq = old

    def run_amdahl_phase_model(self, serial_work: float, parallel_work: float,
                               n_workers: int, boost_to: float) -> Dict[str, float]:
        """Makespan of serial-then-parallel execution with and without a
        serial-phase boost (used by the E2 bench).

        Returns a dict with ``boosted`` / ``unboosted`` makespans and the
        achieved speedup ratio.
        """
        if n_workers < 1 or n_workers > self.machine.n_cores:
            raise ValueError("invalid worker count")
        serial_core = self.machine.cores[0]
        workers = self.machine.cores[:n_workers]

        base_serial = serial_core.cycles_for(serial_work)
        parallel_share = parallel_work / n_workers
        base_parallel = max(core.cycles_for(parallel_share)
                            for core in workers)
        unboosted = base_serial + base_parallel

        lease = self.boost(serial_core, boost_to,
                           throttleable=self.machine.cores[1:])
        if lease is None:
            boosted = unboosted
        else:
            boosted_serial = serial_core.cycles_for(serial_work)
            self.release(lease)
            boosted = boosted_serial + base_parallel
        return {
            "unboosted": unboosted,
            "boosted": boosted,
            "speedup": unboosted / boosted if boosted else float("inf"),
        }


__all__ = ["BoostLease", "FrequencyGovernor", "amdahl_speedup"]
