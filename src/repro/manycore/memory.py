"""Memory locality model (section II).

"When it comes to memory management, we believe a key characteristic shall
be the strict enforcement of locality, at least for on-chip memory."

The model compares two disciplines for a task that needs data owned by
another core:

- **remote access**: every access pays the NoC round-trip for its word
  (the shared-memory style section II argues against);
- **enforced locality**: the data is first transferred in bulk by an
  asynchronous message (setup cost amortized over the block), after which
  all accesses are local.

The A1 ablation bench sweeps access counts and distances and shows the
crossover: beyond a handful of accesses, enforced locality wins, and its
advantage grows with core count (= average distance).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.manycore.machine import Machine


@dataclass
class LocalityModel:
    """Latency parameters, in base-core cycles."""

    local_latency: float = 1.0
    remote_base: float = 10.0       # router/NI entry cost
    per_hop: float = 2.0            # per mesh hop each way
    message_setup: float = 40.0     # software cost to send one message
    per_word_transfer: float = 0.5  # pipelined bulk-transfer cost per word

    def remote_access_latency(self, hops: int) -> float:
        """One remote word access: round trip over the mesh."""
        return self.remote_base + 2 * self.per_hop * hops

    def bulk_transfer_latency(self, words: int, hops: int) -> float:
        """One message moving ``words`` words over ``hops`` hops."""
        return (self.message_setup + self.per_hop * hops
                + self.per_word_transfer * words)


@dataclass
class MemoryAccessPlan:
    """A task's data-access profile against one remote data block."""

    accesses: int          # total accesses the task performs on the block
    block_words: int       # size of the block
    hops: int              # mesh distance to the owning core
    reuse_factor: float = 1.0  # accesses per word actually touched

    def time_remote(self, model: LocalityModel) -> float:
        """Every access goes over the NoC (no locality enforcement)."""
        return self.accesses * model.remote_access_latency(self.hops)

    def time_enforced_local(self, model: LocalityModel) -> float:
        """Transfer the block once by message, then access locally."""
        transfer = model.bulk_transfer_latency(self.block_words, self.hops)
        return transfer + self.accesses * model.local_latency

    def crossover_accesses(self, model: LocalityModel) -> float:
        """Access count above which enforced locality is faster."""
        per_access_gain = (model.remote_access_latency(self.hops)
                           - model.local_latency)
        if per_access_gain <= 0:
            return float("inf")
        transfer = model.bulk_transfer_latency(self.block_words, self.hops)
        return transfer / per_access_gain


def locality_sweep(machine: Machine, model: LocalityModel,
                   block_words: int, access_counts: list) -> Dict[int, Dict[str, float]]:
    """For each access count, average remote vs enforced-local times over
    all core pairs of the machine (A1 bench helper)."""
    pairs = [(a.core_id, b.core_id)
             for a in machine.cores for b in machine.cores
             if a.core_id != b.core_id]
    results: Dict[int, Dict[str, float]] = {}
    for count in access_counts:
        remote_total = 0.0
        local_total = 0.0
        for src, dst in pairs:
            plan = MemoryAccessPlan(count, block_words,
                                    machine.distance(src, dst))
            remote_total += plan.time_remote(model)
            local_total += plan.time_enforced_local(model)
        results[count] = {
            "remote": remote_total / len(pairs),
            "enforced_local": local_total / len(pairs),
        }
    return results


@dataclass
class PrefetchPlan:
    """Section II's short-term strategy for legacy sequential code:
    "support for frequency boosting of cores enhanced with pre-fetching
    support from space-shared cores".

    A sequential phase walks ``blocks`` remote data blocks in order.
    Without help, every block transfer stalls the compute core.  With
    helper cores prefetching ahead, transfer of block k+1 overlaps with
    compute on block k, so steady-state time per block is
    ``max(compute, transfer / helpers)`` instead of their sum.
    """

    blocks: int
    block_words: int
    compute_per_block: float
    hops: int
    helpers: int = 1

    def __post_init__(self) -> None:
        if self.blocks < 1 or self.helpers < 0:
            raise ValueError("need >= 1 block and >= 0 helpers")

    def transfer_time(self, model: LocalityModel) -> float:
        return model.bulk_transfer_latency(self.block_words, self.hops)

    def time_without_prefetch(self, model: LocalityModel) -> float:
        """Serial: fetch block, compute, fetch next, ..."""
        return self.blocks * (self.transfer_time(model)
                              + self.compute_per_block)

    def time_with_prefetch(self, model: LocalityModel) -> float:
        """Helpers stream blocks ahead of the compute core.

        First block cannot be hidden; afterwards the compute core waits
        only when the aggregate prefetch bandwidth falls behind."""
        if self.helpers == 0:
            return self.time_without_prefetch(model)
        transfer = self.transfer_time(model)
        steady = max(self.compute_per_block, transfer / self.helpers)
        return transfer + self.compute_per_block + \
            (self.blocks - 1) * steady

    def speedup(self, model: LocalityModel) -> float:
        with_prefetch = self.time_with_prefetch(model)
        if with_prefetch <= 0:
            return float("inf")
        return self.time_without_prefetch(model) / with_prefetch

    def helpers_to_hide_transfers(self, model: LocalityModel) -> int:
        """Fewest helper cores that make transfers free in steady state."""
        import math
        if self.compute_per_block <= 0:
            return 10**9
        return max(1, math.ceil(self.transfer_time(model)
                                / self.compute_per_block))


__all__ = ["LocalityModel", "MemoryAccessPlan", "PrefetchPlan",
           "locality_sweep"]
