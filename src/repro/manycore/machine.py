"""Chip-level machine model: cores, ISAs, frequency, mesh geometry.

Section II: "the design shall avoid any centralized constructs and rely
instead on a fully distributed, homogeneous approach, including L1 and L2
cache / local memory -- i.e., L2 cache / local memory shall be bound to
cores."  A :class:`Machine` is a grid of :class:`Core` objects, each with
its own local store; inter-core distance follows the mesh.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.serde import serde


@dataclass
class Core:
    """One processing core.

    ``freq`` is a speed multiplier relative to the base core (1.0).  The
    frequency governor may change it at runtime within the machine's power
    budget -- section II's "frequency variability per core".
    """

    core_id: int
    isa: str = "isa0"
    freq: float = 1.0
    max_freq: float = 4.0
    local_memory_words: int = 1 << 16

    def __post_init__(self) -> None:
        if self.freq <= 0:
            raise ValueError("freq must be positive")

    def cycles_for(self, work: float) -> float:
        """Wall time to execute ``work`` base-core units at current freq."""
        return work / self.freq

    def __repr__(self) -> str:
        return f"Core({self.core_id}, isa={self.isa}, f={self.freq:g})"


def mesh_distance(core_a: int, core_b: int, width: int) -> int:
    """Manhattan hop distance between two cores on a ``width``-wide mesh."""
    ax, ay = core_a % width, core_a // width
    bx, by = core_b % width, core_b // width
    return abs(ax - bx) + abs(ay - by)


def torus_distance(core_a: int, core_b: int, width: int,
                   n_cores: int) -> int:
    """Manhattan hop distance on a ``width``-wide 2D torus: both axes
    wrap, so the hop count per axis is the shorter way around."""
    height = n_cores // width
    ax, ay = core_a % width, core_a // width
    bx, by = core_b % width, core_b // width
    dx = abs(ax - bx)
    dy = abs(ay - by)
    return min(dx, width - dx) + min(dy, height - dy)


def ring_distance(core_a: int, core_b: int, n_cores: int) -> int:
    """Hop distance on a unidirectional-geometry ring (shorter arc)."""
    delta = abs(core_a - core_b) % n_cores
    return min(delta, n_cores - delta)


TOPOLOGIES = ("mesh", "torus", "ring")


@dataclass
class Machine:
    """A many-core chip.

    ``isa_map`` assigns ISAs to cores; the default is fully homogeneous.
    A heterogeneous machine (for the E1 comparison) is built with
    :meth:`heterogeneous`.
    """

    n_cores: int
    mesh_width: Optional[int] = None
    power_budget: Optional[float] = None  # sum of freq allowed, None = inf
    cores: List[Core] = field(default_factory=list)
    topology: str = "mesh"  # "mesh" | "torus" | "ring" (hop geometry)

    def __post_init__(self) -> None:
        if self.n_cores < 1:
            raise ValueError("need at least one core")
        if self.topology not in TOPOLOGIES:
            raise ValueError(f"topology must be one of {TOPOLOGIES}, "
                             f"got {self.topology!r}")
        if self.mesh_width is None:
            # Default grid: the widest divisor of n_cores not exceeding
            # the square root, so the grid is always rectangular (the
            # perfect-square default is unchanged).
            root = max(1, int(math.isqrt(self.n_cores)))
            width = next(w for w in range(root, 0, -1)
                         if self.n_cores % w == 0)
            self.mesh_width = width
        else:
            # An explicit width must tile the cores into full rows: a
            # ragged last row silently mis-models every hop distance, so
            # reject it at construction (the architecture generator
            # produces such corners on purpose).
            if self.mesh_width < 1:
                raise ValueError(f"mesh_width must be >= 1, "
                                 f"got {self.mesh_width}")
            if self.n_cores % self.mesh_width != 0:
                raise ValueError(
                    f"non-rectangular mesh: {self.n_cores} cores do not "
                    f"fill rows of width {self.mesh_width}")
        if self.power_budget is not None and not (
                isinstance(self.power_budget, (int, float))
                and math.isfinite(self.power_budget)
                and self.power_budget > 0):
            raise ValueError(f"power_budget must be positive and finite, "
                             f"got {self.power_budget!r}")
        if not self.cores:
            self.cores = [Core(i) for i in range(self.n_cores)]

    @classmethod
    def homogeneous(cls, n_cores: int, freq: float = 1.0,
                    power_budget: Optional[float] = None) -> "Machine":
        if freq <= 0:
            raise ValueError("freq must be positive")
        machine = cls(n_cores, power_budget=power_budget)
        for core in machine.cores:
            core.freq = freq
        return machine

    @classmethod
    def heterogeneous(cls, n_cores: int, isa_split: Dict[str, float],
                      freqs: Optional[Dict[str, float]] = None) -> "Machine":
        """A machine whose cores are statically partitioned between ISAs.

        ``isa_split`` maps ISA name to the fraction of cores it receives;
        fractions must sum to 1.  This is the "a priori partitioning of the
        functionality to different types of HW" that section II argues
        inhibits scalability.
        """
        total = sum(isa_split.values())
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"isa fractions must sum to 1, got {total}")
        machine = cls(n_cores)
        freqs = freqs or {}
        for isa, freq in freqs.items():
            if freq <= 0:
                raise ValueError(f"isa {isa!r}: freq must be positive, "
                                 f"got {freq!r}")
        assigned = 0
        items = sorted(isa_split.items())
        for index, (isa, fraction) in enumerate(items):
            count = (n_cores - assigned if index == len(items) - 1
                     else int(round(fraction * n_cores)))
            for core in machine.cores[assigned:assigned + count]:
                core.isa = isa
                core.freq = freqs.get(isa, 1.0)
            assigned += count
        return machine

    def cores_with_isa(self, isa: str) -> List[Core]:
        return [core for core in self.cores if core.isa == isa]

    @property
    def is_homogeneous(self) -> bool:
        return len({core.isa for core in self.cores}) == 1

    @property
    def total_frequency(self) -> float:
        return sum(core.freq for core in self.cores)

    def distance(self, core_a: int, core_b: int) -> int:
        if self.topology == "torus":
            return torus_distance(core_a, core_b, self.mesh_width or 1,
                                  self.n_cores)
        if self.topology == "ring":
            return ring_distance(core_a, core_b, self.n_cores)
        return mesh_distance(core_a, core_b, self.mesh_width or 1)

    def check_power(self) -> None:
        """Raise if current per-core frequencies exceed the power budget."""
        if self.power_budget is not None and \
                self.total_frequency > self.power_budget + 1e-9:
            raise ValueError(
                f"power budget exceeded: {self.total_frequency:g} > "
                f"{self.power_budget:g}")

    def __repr__(self) -> str:
        isas = sorted({core.isa for core in self.cores})
        return f"Machine({self.n_cores} cores, isas={isas})"


@serde("manycore-config")
@dataclass
class ManyCoreConfig:
    """A validated, JSON-pure description of a many-core chip.

    This is the form the architecture generator (:mod:`repro.gen.arch`)
    emits and farm jobs ship between processes: everything a
    :class:`Machine` needs, checked *loudly* at construction.  A config
    that would mis-simulate -- zero/negative/non-finite frequencies, a
    mesh width that leaves a ragged last row, an unknown topology --
    raises :class:`ValueError` here instead of producing silently wrong
    hop distances or cycle counts downstream.
    """

    n_cores: int
    mesh_width: Optional[int] = None
    topology: str = "mesh"
    freqs: Optional[List[float]] = None  # per-core; None = all 1.0
    power_budget: Optional[float] = None
    local_memory_words: int = 1 << 16

    def __post_init__(self) -> None:
        if not isinstance(self.n_cores, int) or self.n_cores < 1:
            raise ValueError(f"n_cores must be a positive int, "
                             f"got {self.n_cores!r}")
        if self.topology not in TOPOLOGIES:
            raise ValueError(f"topology must be one of {TOPOLOGIES}, "
                             f"got {self.topology!r}")
        if self.mesh_width is not None:
            if not isinstance(self.mesh_width, int) or self.mesh_width < 1:
                raise ValueError(f"mesh_width must be a positive int, "
                                 f"got {self.mesh_width!r}")
            if self.n_cores % self.mesh_width != 0:
                raise ValueError(
                    f"non-rectangular mesh: {self.n_cores} cores do not "
                    f"fill rows of width {self.mesh_width}")
        if self.freqs is not None:
            if len(self.freqs) != self.n_cores:
                raise ValueError(
                    f"freqs has {len(self.freqs)} entries for "
                    f"{self.n_cores} cores")
            for index, freq in enumerate(self.freqs):
                if not (isinstance(freq, (int, float))
                        and math.isfinite(freq) and freq > 0):
                    raise ValueError(
                        f"core {index}: freq must be positive and "
                        f"finite, got {freq!r}")
        if self.power_budget is not None and not (
                isinstance(self.power_budget, (int, float))
                and math.isfinite(self.power_budget)
                and self.power_budget > 0):
            raise ValueError(f"power_budget must be positive and finite, "
                             f"got {self.power_budget!r}")
        if not isinstance(self.local_memory_words, int) \
                or self.local_memory_words < 1:
            raise ValueError(f"local_memory_words must be a positive int, "
                             f"got {self.local_memory_words!r}")
        if self.power_budget is not None and self.freqs is not None \
                and sum(self.freqs) > self.power_budget + 1e-9:
            raise ValueError(
                f"power budget exceeded at construction: "
                f"{sum(self.freqs):g} > {self.power_budget:g}")

    # ------------------------------------------------------------------
    def build(self) -> Machine:
        """Materialize the validated config into a :class:`Machine`."""
        machine = Machine(self.n_cores, mesh_width=self.mesh_width,
                          power_budget=self.power_budget,
                          topology=self.topology)
        for core in machine.cores:
            core.local_memory_words = self.local_memory_words
            if self.freqs is not None:
                core.freq = self.freqs[core.core_id]
        return machine

    def to_dict(self) -> dict:
        return {"n_cores": self.n_cores, "mesh_width": self.mesh_width,
                "topology": self.topology,
                "freqs": list(self.freqs) if self.freqs is not None
                else None,
                "power_budget": self.power_budget,
                "local_memory_words": self.local_memory_words}

    @classmethod
    def from_dict(cls, data: dict) -> "ManyCoreConfig":
        unknown = set(data) - {"n_cores", "mesh_width", "topology",
                               "freqs", "power_budget",
                               "local_memory_words"}
        if unknown:
            raise ValueError(f"unknown ManyCoreConfig key(s): "
                             f"{sorted(unknown)}")
        if "n_cores" not in data:
            raise ValueError("ManyCoreConfig needs n_cores")
        return cls(n_cores=data["n_cores"],
                   mesh_width=data.get("mesh_width"),
                   topology=data.get("topology", "mesh"),
                   freqs=data.get("freqs"),
                   power_budget=data.get("power_budget"),
                   local_memory_words=data.get("local_memory_words",
                                               1 << 16))


__all__ = ["Core", "Machine", "ManyCoreConfig", "TOPOLOGIES",
           "mesh_distance", "ring_distance", "torus_distance"]
