"""Chip-level machine model: cores, ISAs, frequency, mesh geometry.

Section II: "the design shall avoid any centralized constructs and rely
instead on a fully distributed, homogeneous approach, including L1 and L2
cache / local memory -- i.e., L2 cache / local memory shall be bound to
cores."  A :class:`Machine` is a grid of :class:`Core` objects, each with
its own local store; inter-core distance follows the mesh.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class Core:
    """One processing core.

    ``freq`` is a speed multiplier relative to the base core (1.0).  The
    frequency governor may change it at runtime within the machine's power
    budget -- section II's "frequency variability per core".
    """

    core_id: int
    isa: str = "isa0"
    freq: float = 1.0
    max_freq: float = 4.0
    local_memory_words: int = 1 << 16

    def __post_init__(self) -> None:
        if self.freq <= 0:
            raise ValueError("freq must be positive")

    def cycles_for(self, work: float) -> float:
        """Wall time to execute ``work`` base-core units at current freq."""
        return work / self.freq

    def __repr__(self) -> str:
        return f"Core({self.core_id}, isa={self.isa}, f={self.freq:g})"


def mesh_distance(core_a: int, core_b: int, width: int) -> int:
    """Manhattan hop distance between two cores on a ``width``-wide mesh."""
    ax, ay = core_a % width, core_a // width
    bx, by = core_b % width, core_b // width
    return abs(ax - bx) + abs(ay - by)


@dataclass
class Machine:
    """A many-core chip.

    ``isa_map`` assigns ISAs to cores; the default is fully homogeneous.
    A heterogeneous machine (for the E1 comparison) is built with
    :meth:`heterogeneous`.
    """

    n_cores: int
    mesh_width: Optional[int] = None
    power_budget: Optional[float] = None  # sum of freq allowed, None = inf
    cores: List[Core] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.n_cores < 1:
            raise ValueError("need at least one core")
        if self.mesh_width is None:
            self.mesh_width = max(1, int(math.isqrt(self.n_cores)))
        if not self.cores:
            self.cores = [Core(i) for i in range(self.n_cores)]

    @classmethod
    def homogeneous(cls, n_cores: int, freq: float = 1.0,
                    power_budget: Optional[float] = None) -> "Machine":
        machine = cls(n_cores, power_budget=power_budget)
        for core in machine.cores:
            core.freq = freq
        return machine

    @classmethod
    def heterogeneous(cls, n_cores: int, isa_split: Dict[str, float],
                      freqs: Optional[Dict[str, float]] = None) -> "Machine":
        """A machine whose cores are statically partitioned between ISAs.

        ``isa_split`` maps ISA name to the fraction of cores it receives;
        fractions must sum to 1.  This is the "a priori partitioning of the
        functionality to different types of HW" that section II argues
        inhibits scalability.
        """
        total = sum(isa_split.values())
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"isa fractions must sum to 1, got {total}")
        machine = cls(n_cores)
        freqs = freqs or {}
        assigned = 0
        items = sorted(isa_split.items())
        for index, (isa, fraction) in enumerate(items):
            count = (n_cores - assigned if index == len(items) - 1
                     else int(round(fraction * n_cores)))
            for core in machine.cores[assigned:assigned + count]:
                core.isa = isa
                core.freq = freqs.get(isa, 1.0)
            assigned += count
        return machine

    def cores_with_isa(self, isa: str) -> List[Core]:
        return [core for core in self.cores if core.isa == isa]

    @property
    def is_homogeneous(self) -> bool:
        return len({core.isa for core in self.cores}) == 1

    @property
    def total_frequency(self) -> float:
        return sum(core.freq for core in self.cores)

    def distance(self, core_a: int, core_b: int) -> int:
        return mesh_distance(core_a, core_b, self.mesh_width or 1)

    def check_power(self) -> None:
        """Raise if current per-core frequencies exceed the power budget."""
        if self.power_budget is not None and \
                self.total_frequency > self.power_budget + 1e-9:
            raise ValueError(
                f"power budget exceeded: {self.total_frequency:g} > "
                f"{self.power_budget:g}")

    def __repr__(self) -> str:
        isas = sorted({core.isa for core in self.cores})
        return f"Machine({self.n_cores} cores, isas={isas})"


__all__ = ["Core", "Machine", "mesh_distance"]
