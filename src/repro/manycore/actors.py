"""Actor framework: internally sequential, asynchronously communicating
components (section II programming model).

"a flat, de-coupled software architecture made up of asynchronously
communicating, internally sequential components" -- the section-II
conclusion.  A :class:`SequentialActor` owns one core, processes one
message at a time to completion (run-to-completion semantics), and talks
to other actors only through the NoC.  No locks exist anywhere in the
model; determinism per actor follows from single-threaded execution.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.desim import Delay, Simulator
from repro.manycore.machine import Machine
from repro.manycore.messaging import Message, NoCModel

Handler = Callable[["SequentialActor", Message], Any]


class SequentialActor:
    """One actor pinned to one core.

    Handlers are registered per message tag with :meth:`on`.  A handler may
    call :meth:`send` (asynchronous, never blocks) and :meth:`compute`
    (advances simulated time by ``work / core.freq``).  Each message is
    handled to completion before the next is dequeued -- there is no
    intra-actor concurrency, which is what makes the model deterministic
    and lock-free.
    """

    def __init__(self, system: "ActorSystem", core_id: int,
                 name: str = "") -> None:
        self.system = system
        self.core_id = core_id
        self.name = name or f"actor{core_id}"
        self.handlers: Dict[str, Handler] = {}
        self.messages_handled = 0
        self.state: Dict[str, Any] = {}
        self._pending_work = 0.0
        self.stopped = False

    def on(self, tag: str, handler: Handler) -> None:
        self.handlers[tag] = handler

    def send(self, dst_actor: "SequentialActor", payload: Any,
             size_words: int = 1, tag: str = "msg") -> None:
        self.system.noc.send(self.core_id, dst_actor.core_id, payload,
                             size_words, tag)

    def compute(self, work: float) -> None:
        """Accumulate computation time, applied before the handler returns."""
        self._pending_work += work

    def stop(self) -> None:
        self.stopped = True

    def _run(self):
        mailbox = self.system.noc.mailbox(self.core_id)
        core = self.system.machine.cores[self.core_id]
        while not self.stopped:
            _, message = yield from mailbox.receive()
            handler = self.handlers.get(message.tag)
            if handler is None:
                self.system.dead_letters.append(message)
                continue
            self._pending_work = 0.0
            handler(self, message)
            self.messages_handled += 1
            if self._pending_work > 0:
                yield Delay(self._pending_work / core.freq)


class ActorSystem:
    """A set of actors over one machine and one NoC."""

    def __init__(self, machine: Machine,
                 sim: Optional[Simulator] = None,
                 noc_kwargs: Optional[Dict[str, float]] = None) -> None:
        self.sim = sim or Simulator()
        self.machine = machine
        self.noc = NoCModel(self.sim, machine, **(noc_kwargs or {}))
        self.actors: Dict[str, SequentialActor] = {}
        self.dead_letters: List[Message] = []
        self._used_cores: set = set()

    def actor(self, name: str, core_id: Optional[int] = None) -> SequentialActor:
        """Create (and start) an actor on a dedicated core."""
        if name in self.actors:
            raise ValueError(f"duplicate actor {name!r}")
        if core_id is None:
            core_id = next(c.core_id for c in self.machine.cores
                           if c.core_id not in self._used_cores)
        if core_id in self._used_cores:
            raise ValueError(f"core {core_id} already hosts an actor")
        self._used_cores.add(core_id)
        actor = SequentialActor(self, core_id, name)
        self.actors[name] = actor
        self.sim.spawn(actor._run(), name=name)
        return actor

    def inject(self, dst: SequentialActor, payload: Any,
               tag: str = "msg", size_words: int = 1) -> None:
        """Send a message from 'outside' (core id of destination used as
        source; zero-distance)."""
        self.noc.send(dst.core_id, dst.core_id, payload, size_words, tag)

    def run(self, until: Optional[float] = None) -> float:
        return self.sim.run(until=until)


__all__ = ["ActorSystem", "Handler", "SequentialActor"]
