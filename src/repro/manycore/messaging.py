"""Asynchronous message transport over the mesh NoC (section II).

The programming model of section II decouples cores and enforces "a
messaging based programming model, at least on the OS level".  The
:class:`NoCModel` delivers :class:`Message` objects between per-core
mailboxes with a latency determined by mesh distance and message size; it
runs on the discrete-event kernel so actor systems (see
:mod:`repro.manycore.actors`) get realistic asynchrony.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict

from repro.desim import Mailbox, Simulator
from repro.manycore.machine import Machine


@dataclass
class Message:
    """One asynchronous message."""

    src: int
    dst: int
    payload: Any
    size_words: int = 1
    tag: str = ""
    sent_at: float = 0.0
    delivered_at: float = 0.0

    @property
    def latency(self) -> float:
        return self.delivered_at - self.sent_at


class NoCModel:
    """Mesh network-on-chip with per-core mailboxes.

    Latency model: ``base + per_hop * hops + per_word * size``.  Messages
    between the same pair of cores are delivered in FIFO order (the
    transport serializes per destination link); messages from different
    sources may interleave, as on real hardware.
    """

    def __init__(self, sim: Simulator, machine: Machine,
                 base_latency: float = 5.0, per_hop: float = 2.0,
                 per_word: float = 0.5) -> None:
        self.sim = sim
        self.machine = machine
        self.base_latency = base_latency
        self.per_hop = per_hop
        self.per_word = per_word
        self.mailboxes: Dict[int, Mailbox] = {
            core.core_id: Mailbox(f"mbox{core.core_id}")
            for core in machine.cores}
        self.messages_sent = 0
        self.total_latency = 0.0
        # Per-(src,dst) time the link frees up, to serialize same-pair order.
        self._link_free: Dict[tuple, float] = {}

    def latency_for(self, src: int, dst: int, size_words: int) -> float:
        hops = self.machine.distance(src, dst)
        return self.base_latency + self.per_hop * hops + \
            self.per_word * size_words

    def send(self, src: int, dst: int, payload: Any,
             size_words: int = 1, tag: str = "") -> Message:
        """Asynchronous, non-blocking send; delivery happens after the
        modeled latency."""
        if dst not in self.mailboxes:
            raise KeyError(f"no core {dst}")
        message = Message(src, dst, payload, size_words, tag,
                          sent_at=self.sim.now)
        arrival = self.sim.now + self.latency_for(src, dst, size_words)
        key = (src, dst)
        arrival = max(arrival, self._link_free.get(key, 0.0))
        self._link_free[key] = arrival

        def deliver() -> None:
            message.delivered_at = self.sim.now
            self.total_latency += message.latency
            self.mailboxes[dst].send(message, sender=str(src))

        self.sim.at(arrival, deliver)
        self.messages_sent += 1
        return message

    def mailbox(self, core_id: int) -> Mailbox:
        return self.mailboxes[core_id]

    @property
    def mean_latency(self) -> float:
        delivered = sum(m.total_received for m in self.mailboxes.values())
        if delivered == 0:
            return 0.0
        return self.total_latency / delivered


__all__ = ["Message", "NoCModel"]
