"""Asynchronous message transport over the mesh NoC (section II).

The programming model of section II decouples cores and enforces "a
messaging based programming model, at least on the OS level".  The
:class:`NoCModel` delivers :class:`Message` objects between per-core
mailboxes with a latency determined by mesh distance and message size; it
runs on the discrete-event kernel so actor systems (see
:mod:`repro.manycore.actors`) get realistic asynchrony.

Two delivery modes:

- **best-effort** (default): the historical fire-and-forget transport.
  With no fault hook attached this is a single scheduled callback per
  message -- the fast path is byte-for-byte the pre-resilience code.
- **reliable** (``reliable=True``): per-flow sequence numbers, a
  payload checksum, receiver acks, timeout + exponential-backoff
  retransmission, and duplicate suppression.  Under an injected fault
  campaign (drop/duplicate/delay/corrupt, see :mod:`repro.faults`) the
  reliable mode still delivers every message exactly once to the
  application mailbox, trading latency for delivery -- the "degrade
  gracefully, don't crash" behaviour the ROADMAP's robustness pillar
  asks for.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Set, Tuple

from repro.desim import Mailbox, Simulator
from repro.manycore.machine import Machine

# A fault hook inspects one transmission and returns None (deliver
# normally) or a dict of actions: {"drop": True}, {"duplicate": True},
# {"corrupt": True}, {"extra_delay": float} -- combinable except drop.
FaultHook = Callable[["Message"], Optional[Dict[str, Any]]]

# A happens-before hook observes synchronization edges: ("send", m) when
# a message leaves the sender, ("deliver", m) when it reaches the
# destination mailbox, and in reliable mode ("ack_sent", m) /
# ("acked", m) for the receiver->sender ack edge.  Pure observation --
# see repro.sanitize.noc.NoCOrderTracker.
HBHook = Callable[[str, "Message"], None]


def _checksum(payload: Any) -> int:
    """Cheap deterministic payload digest for corruption detection."""
    return hash(repr(payload)) & 0xFFFFFFFF


@dataclass
class Message:
    """One asynchronous message."""

    src: int
    dst: int
    payload: Any
    size_words: int = 1
    tag: str = ""
    sent_at: float = 0.0
    delivered_at: float = 0.0
    # Reliable-mode transport state.
    seq: Optional[int] = None        # per-(src, dst) flow sequence number
    checksum: Optional[int] = None   # set on send in reliable mode
    attempts: int = 1                # transmissions performed so far
    corrupted: bool = field(default=False, compare=False)

    @property
    def latency(self) -> float:
        return self.delivered_at - self.sent_at

    @property
    def flow(self) -> Tuple[int, int]:
        return (self.src, self.dst)


class NoCModel:
    """Mesh network-on-chip with per-core mailboxes.

    Latency model: ``base + per_hop * hops + per_word * size``.  Messages
    between the same pair of cores are delivered in FIFO order (the
    transport serializes per destination link); messages from different
    sources may interleave, as on real hardware.

    Reliability knobs (used only when ``reliable=True``):

    - ``ack_timeout``: sim time before the first retransmission; default
      is 1.5x the modeled round-trip for the message.
    - ``max_retries``: transmissions before the message is declared
      undeliverable (counted, traced, never raised).
    - ``backoff``: multiplicative timeout growth per retry.

    ``sink``/``metrics`` are optional observability outputs; the
    fault-free best-effort path never touches them.
    """

    def __init__(self, sim: Simulator, machine: Machine,
                 base_latency: float = 5.0, per_hop: float = 2.0,
                 per_word: float = 0.5, reliable: bool = False,
                 ack_timeout: Optional[float] = None, max_retries: int = 10,
                 backoff: float = 2.0, sink: Optional[Any] = None,
                 metrics: Optional[Any] = None) -> None:
        self.sim = sim
        self.machine = machine
        self.base_latency = base_latency
        self.per_hop = per_hop
        self.per_word = per_word
        self.reliable = reliable
        self.ack_timeout = ack_timeout
        self.max_retries = max_retries
        self.backoff = backoff
        self.sink = sink
        self.metrics = metrics
        self.fault_hook: Optional[FaultHook] = None
        self.hb_hook: Optional[HBHook] = None
        self.mailboxes: Dict[int, Mailbox] = {
            core.core_id: Mailbox(f"mbox{core.core_id}")
            for core in machine.cores}
        self.messages_sent = 0
        self.total_latency = 0.0
        # Per-(src,dst) time the link frees up, to serialize same-pair order.
        self._link_free: Dict[tuple, float] = {}
        # Reliable-mode state.
        self._flow_next_seq: Dict[Tuple[int, int], int] = {}
        self._flow_delivered: Dict[Tuple[int, int], Set[int]] = {}
        self._pending: Dict[Tuple[int, int, int], Message] = {}
        self.undeliverable: int = 0

    def latency_for(self, src: int, dst: int, size_words: int) -> float:
        hops = self.machine.distance(src, dst)
        return self.base_latency + self.per_hop * hops + \
            self.per_word * size_words

    # ------------------------------------------------------------------
    # send
    # ------------------------------------------------------------------
    def send(self, src: int, dst: int, payload: Any,
             size_words: int = 1, tag: str = "") -> Message:
        """Asynchronous, non-blocking send; delivery happens after the
        modeled latency (plus retransmissions in reliable mode)."""
        if dst not in self.mailboxes:
            raise KeyError(f"no core {dst}")
        message = Message(src, dst, payload, size_words, tag,
                          sent_at=self.sim.now)
        if self.hb_hook is not None:
            self.hb_hook("send", message)
        if not self.reliable and self.fault_hook is None:
            # Fast path: exactly the historical best-effort transport.
            arrival = self.sim.now + self.latency_for(src, dst, size_words)
            key = (src, dst)
            arrival = max(arrival, self._link_free.get(key, 0.0))
            self._link_free[key] = arrival

            def deliver() -> None:
                message.delivered_at = self.sim.now
                self.total_latency += message.latency
                self.mailboxes[dst].send(message, sender=str(src))
                if self.hb_hook is not None:
                    self.hb_hook("deliver", message)

            self.sim.at(arrival, deliver)
            self.messages_sent += 1
            return message
        if self.reliable:
            flow = message.flow
            message.seq = self._flow_next_seq.get(flow, 0)
            self._flow_next_seq[flow] = message.seq + 1
            message.checksum = _checksum(payload)
            self._pending[flow + (message.seq,)] = message
        self.messages_sent += 1
        self._count("noc.sent")
        self._transmit(message, attempt=1)
        return message

    # ------------------------------------------------------------------
    # chaos / reliable transport internals
    # ------------------------------------------------------------------
    def _count(self, name: str, amount: float = 1.0) -> None:
        if self.metrics is not None:
            self.metrics.counter(name).inc(amount)

    def _trace(self, name: str, **args: Any) -> None:
        if self.sink is not None:
            self.sink.instant(name, track="noc", ts=self.sim.now, **args)

    def _transmit(self, message: Message, attempt: int) -> None:
        faults = self.fault_hook(message) if self.fault_hook else None
        key = (message.src, message.dst)
        arrival = self.sim.now + self.latency_for(message.src, message.dst,
                                                  message.size_words)
        arrival = max(arrival, self._link_free.get(key, 0.0))
        self._link_free[key] = arrival  # dropped packets still burn the link
        copies = 1
        corrupted = False
        if faults is not None:
            if faults.get("drop"):
                copies = 0
                self._count("noc.drops")
                self._trace("noc.drop", src=message.src, dst=message.dst,
                            seq=message.seq, tag=message.tag)
            else:
                if faults.get("corrupt"):
                    corrupted = True
                    self._count("noc.corruptions")
                if faults.get("duplicate"):
                    copies = 2
                    self._count("noc.duplicates")
                extra = faults.get("extra_delay", 0.0)
                if extra:
                    arrival += extra
                    self._count("noc.delays")
        for _ in range(copies):
            self.sim.at(arrival,
                        lambda corrupted=corrupted: self._arrive(message,
                                                                 corrupted))
        if self.reliable:
            timeout = self._timeout_for(message) * \
                (self.backoff ** (attempt - 1))
            self.sim.at(self.sim.now + timeout,
                        lambda: self._retry_check(message, attempt))

    def _timeout_for(self, message: Message) -> float:
        if self.ack_timeout is not None:
            return self.ack_timeout
        rtt = self.latency_for(message.src, message.dst,
                               message.size_words) + \
            self.latency_for(message.dst, message.src, 1)
        return 1.5 * rtt

    def _arrive(self, message: Message, corrupted: bool) -> None:
        if not self.reliable:
            # Best-effort with a fault hook: deliver as-is, flagged.
            message.delivered_at = self.sim.now
            message.corrupted = message.corrupted or corrupted
            self.total_latency += message.latency
            self.mailboxes[message.dst].send(message,
                                             sender=str(message.src))
            if self.hb_hook is not None:
                self.hb_hook("deliver", message)
            return
        if corrupted:
            # Checksum mismatch at the receiver: discard, no ack -- the
            # sender's timeout covers recovery.
            self._count("noc.corrupt_discarded")
            self._trace("noc.corrupt_discarded", src=message.src,
                        dst=message.dst, seq=message.seq)
            return
        flow = message.flow
        delivered = self._flow_delivered.setdefault(flow, set())
        if message.seq in delivered:
            self._count("noc.dup_suppressed")
        else:
            delivered.add(message.seq)
            message.delivered_at = self.sim.now
            self.total_latency += message.latency
            self.mailboxes[message.dst].send(message,
                                             sender=str(message.src))
            self._count("noc.delivered")
            if self.hb_hook is not None:
                self.hb_hook("deliver", message)
        # Ack even a duplicate: the original ack may have been lost.
        self._send_ack(message)

    def _send_ack(self, message: Message) -> None:
        if self.hb_hook is not None:
            self.hb_hook("ack_sent", message)
        ack = Message(message.dst, message.src, ("ack", message.seq),
                      size_words=1, tag="__ack__", sent_at=self.sim.now,
                      seq=message.seq)
        faults = self.fault_hook(ack) if self.fault_hook else None
        arrival = self.sim.now + self.latency_for(ack.src, ack.dst, 1)
        if faults is not None:
            if faults.get("drop") or faults.get("corrupt"):
                self._count("noc.acks_lost")
                return
            arrival += faults.get("extra_delay", 0.0)
        key = message.flow + (message.seq,)
        self.sim.at(arrival, lambda: self._on_ack(key))

    def _on_ack(self, key: Tuple[int, int, int]) -> None:
        message = self._pending.pop(key, None)
        if message is None:
            return  # already acked (duplicate ack)
        self._count("noc.acked")
        if self.hb_hook is not None:
            self.hb_hook("acked", message)
        if self.metrics is not None and message.attempts > 1:
            self.metrics.histogram("noc.attempts_to_deliver").observe(
                message.attempts)

    def _retry_check(self, message: Message, attempt: int) -> None:
        key = message.flow + (message.seq,)
        if key not in self._pending:
            return  # acked meanwhile
        if attempt >= self.max_retries:
            self._pending.pop(key, None)
            self.undeliverable += 1
            self._count("noc.undeliverable")
            self._trace("noc.undeliverable", src=message.src,
                        dst=message.dst, seq=message.seq, tag=message.tag,
                        attempts=message.attempts)
            return
        message.attempts += 1
        self._count("noc.retries")
        self._trace("noc.retry", src=message.src, dst=message.dst,
                    seq=message.seq, attempt=attempt + 1)
        self._transmit(message, attempt + 1)

    # ------------------------------------------------------------------
    @property
    def in_flight(self) -> int:
        """Reliable-mode messages sent but not yet acked."""
        return len(self._pending)

    def mailbox(self, core_id: int) -> Mailbox:
        return self.mailboxes[core_id]

    @property
    def mean_latency(self) -> float:
        delivered = sum(m.total_received for m in self.mailboxes.values())
        if delivered == 0:
            return 0.0
        return self.total_latency / delivered


__all__ = ["FaultHook", "HBHook", "Message", "NoCModel"]
