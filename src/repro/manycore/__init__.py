"""Many-core HW + OS model (paper section II).

Section II argues for:

- homogeneous-ISA cores with per-core frequency variability
  (:mod:`repro.manycore.machine`, :mod:`repro.manycore.freq_governor`);
- an OS mixing **time-shared** and **space-shared** scheduling
  (:mod:`repro.manycore.os_scheduler`);
- strict on-chip memory locality with message-based decoupling
  (:mod:`repro.manycore.memory`, :mod:`repro.manycore.messaging`);
- a programming model of internally sequential actors communicating by
  asynchronous messages (:mod:`repro.manycore.actors`).

The E1-E3 and A1 benches run on these models.
"""

from repro.manycore.machine import (
    Core,
    Machine,
    ManyCoreConfig,
    TOPOLOGIES,
    mesh_distance,
    ring_distance,
    torus_distance,
)
from repro.manycore.freq_governor import FrequencyGovernor, amdahl_speedup
from repro.manycore.os_scheduler import (
    AppSpec,
    AppResult,
    ScheduleOutcome,
    expand_periodic,
    run_hybrid,
    run_space_shared,
    run_time_shared,
)
from repro.manycore.memory import LocalityModel, MemoryAccessPlan, PrefetchPlan
from repro.manycore.messaging import Message, NoCModel
from repro.manycore.actors import ActorSystem, SequentialActor

__all__ = [
    "ActorSystem", "AppResult", "AppSpec", "Core", "FrequencyGovernor",
    "LocalityModel", "Machine", "ManyCoreConfig", "MemoryAccessPlan",
    "Message", "NoCModel", "PrefetchPlan",
    "ScheduleOutcome", "SequentialActor", "TOPOLOGIES", "amdahl_speedup",
    "expand_periodic", "mesh_distance", "ring_distance",
    "run_hybrid", "run_space_shared", "run_time_shared", "torus_distance",
]
