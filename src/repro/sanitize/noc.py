"""Happens-before tracking over the manycore NoC transport.

The actor/OS world of :mod:`repro.manycore` synchronizes through
:class:`~repro.manycore.messaging.NoCModel` messages instead of bus
peripherals.  :class:`NoCOrderTracker` installs itself as the model's
``hb_hook`` and maintains one vector clock per core:

- **send**      -- snapshot the sender's clock onto the message;
- **deliver**   -- the receiver joins that snapshot (message edge);
- **ack_sent**  -- snapshot the receiver's clock onto the ack
  (reliable mode only);
- **acked**     -- the sender joins the receiver snapshot (the
  reliable-NoC *ack edge*: after the ack, everything the receiver did
  before acknowledging happened-before the sender's continuation).

The tracker is a pure observer: it never delays, drops or reorders
messages, and the transport's fault-free best-effort fast path is
untouched when no hook is installed.
"""

from __future__ import annotations

from typing import Dict

from repro.manycore.messaging import Message, NoCModel
from repro.sanitize.vclock import VectorClock


class NoCOrderTracker:
    """Vector clocks over NoC message and ack edges."""

    def __init__(self, noc: NoCModel) -> None:
        if noc.hb_hook is not None:
            raise RuntimeError("NoC already has a happens-before hook")
        self.noc = noc
        self.clocks: Dict[int, VectorClock] = {
            core_id: VectorClock({f"core{core_id}": 1})
            for core_id in noc.mailboxes}
        self.edge_counts: Dict[str, int] = {
            "send": 0, "deliver": 0, "ack_sent": 0, "acked": 0}
        self._hook = self._on_edge  # one bound method, for identity checks
        noc.hb_hook = self._hook

    def detach(self) -> None:
        if self.noc.hb_hook is self._hook:
            self.noc.hb_hook = None

    # ------------------------------------------------------------------
    def clock(self, core_id: int) -> VectorClock:
        return self.clocks[core_id]

    def ordered(self, src: int, dst: int) -> bool:
        """Has everything ``src`` completed before its latest tracked
        edge happened-before ``dst``'s current point?  ``src``'s own
        component is compared one segment back: the segment *after* its
        last send/ack is still open and cannot be ordered yet."""
        own = f"core{src}"
        target = self.clocks[dst]
        for thread, value in self.clocks[src].clocks.items():
            if thread == own:
                value -= 1
            if target.get(thread) < value:
                return False
        return True

    # ------------------------------------------------------------------
    def _on_edge(self, kind: str, message: Message) -> None:
        self.edge_counts[kind] = self.edge_counts.get(kind, 0) + 1
        if kind == "send":
            vc = self.clocks[message.src]
            message._hb_send_clock = vc.snapshot()
            vc.tick(f"core{message.src}")
        elif kind == "deliver":
            snapshot = getattr(message, "_hb_send_clock", None)
            if snapshot is not None:
                self.clocks[message.dst].join(snapshot)
        elif kind == "ack_sent":
            vc = self.clocks[message.dst]
            message._hb_ack_clock = vc.snapshot()
            vc.tick(f"core{message.dst}")
        elif kind == "acked":
            snapshot = getattr(message, "_hb_ack_clock", None)
            if snapshot is not None:
                self.clocks[message.src].join(snapshot)


__all__ = ["NoCOrderTracker"]
