"""Happens-before data-race detection over a simulated SoC.

The :class:`RaceSanitizer` is a pure observer in the virtual-platform
sense: it subscribes to the bus, to the cores' interrupt entry/exit and
to DMA completion, derives a happens-before order from the hardware
synchronization edges the platform already models, and never consumes
simulated time or touches architectural state.  Attaching one forces
every core onto the event-exact per-instruction ISS path (the same
:meth:`~repro.vp.soc.SoC.acquire_sync` contract the debugger uses), so
the observed access stream is the exact ``quantum=1`` reference ordering
-- and the monitored program still behaves bit-identically to an
unmonitored run.

Happens-before edges (see DESIGN.md, "Happens-before model"):

==========================  ============================================
hardware event              edge
==========================  ============================================
semaphore release           releaser  ->  next successful acquirer
(``sw 0`` while held)
semaphore acquire           join of the semaphore's clock
(``lw`` returning 0)
mailbox ``TX_DATA`` push    sender  ->  the receiver that pops that word
mailbox ``RX_DATA`` pop     join of the matching sender snapshot
DMA ``CTRL`` start          starting core  ->  DMA engine
DMA completion              DMA engine  ->  ``STATUS``-done pollers and
                            ISRs entered on the DMA interrupt line
interrupt delivery          publishing device  ->  the entered ISR
``iret``                    segment boundary on the returning core
==========================  ============================================

Accesses to shared RAM words by different threads (cores and the DMA
engine), at least one a write, that are *not* ordered by these edges are
reported as races -- with both access sites (thread, pc, cycle), as
``race.*`` obs instants and metrics, and through a byte-deterministic
:meth:`RaceSanitizer.report`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.sanitize.vclock import VectorClock
from repro.vp.peripherals.dma import CTRL as DMA_CTRL, STATUS as DMA_STATUS
from repro.vp.peripherals.mailbox import RX_DATA, TX_DATA, TX_DST
from repro.vp.soc import (DMA_BASE, MBOX_BASE, MBOX_STRIDE, SEM_BASE, SoC)

DMA_THREAD = "dma"


@dataclass(frozen=True)
class Site:
    """One access site: who, where in the program, when."""

    thread: str
    pc: int
    cycle: float

    def __str__(self) -> str:
        return f"{self.thread}@pc={self.pc} cyc={self.cycle:g}"


@dataclass(frozen=True)
class Race:
    """One reported data race (first occurrence of its dedup key)."""

    address: int
    kind: str  # 'write-write' | 'write-read' | 'read-write'
    prior: Site
    current: Site

    @property
    def key(self) -> Tuple:
        """Dedup key: site pcs/threads, not cycles (every loop iteration
        of the same buggy pair is one race, not thousands)."""
        return (self.address, self.kind, self.prior.thread, self.prior.pc,
                self.current.thread, self.current.pc)

    def __str__(self) -> str:
        return (f"ram[{self.address:#06x}] {self.kind}: "
                f"{self.prior} vs {self.current}")


class _WordState:
    """Shadow state of one RAM word: last-writer epoch + last readers."""

    __slots__ = ("write", "reads")

    def __init__(self) -> None:
        # (thread, clock, pc, cycle) of the last write.
        self.write: Optional[Tuple[str, int, int, float]] = None
        # thread -> (clock, pc, cycle) of its last read since that write.
        self.reads: Dict[str, Tuple[int, int, float]] = {}


class RaceSanitizer:
    """Happens-before race detector attached to one :class:`SoC`.

    ``sink``/``metrics`` are optional observability outputs (``race.*``
    instants and counters).  Construction attaches immediately; call
    :meth:`detach` to release the platform (cores resume temporal
    decoupling).  Attach before the first :meth:`SoC.run` so the shadow
    peripheral state starts consistent with the hardware.
    """

    def __init__(self, soc: SoC, sink: Optional[Any] = None,
                 metrics: Optional[Any] = None,
                 track: str = "sanitizer") -> None:
        self.soc = soc
        self.sink = sink
        self.metrics = metrics
        self.track = track
        self.races: List[Race] = []
        self.race_counts: Dict[Tuple, int] = {}
        self.checked_accesses = 0

        config = soc.config
        self._ram_words = config.ram_words
        self._sem_lo = SEM_BASE
        self._sem_hi = SEM_BASE + config.n_semaphores
        self._dma_lo = DMA_BASE
        self._mbox_lo = MBOX_BASE
        self._mbox_hi = MBOX_BASE + config.n_cores * MBOX_STRIDE

        # Per-thread vector clocks; a thread's own component starts at 1
        # so the epoch (t, 0) never exists and nothing is spuriously
        # ordered before a thread that was never synchronized with.
        self._vc: Dict[str, VectorClock] = {}
        # Shadow RAM word states, created on first observed access.
        self._shadow: Dict[int, _WordState] = {}
        # Sync-object clocks.
        self._sem_clock = [VectorClock() for _ in range(config.n_semaphores)]
        self._sem_shadow = [0] * config.n_semaphores
        self._mbox_dst = [0] * config.n_cores
        self._mbox_fifo: List[Deque[VectorClock]] = [
            deque() for _ in range(config.n_cores)]
        self._mbox_capacity = soc.mailboxes.capacity
        self._doorbell_clock = [VectorClock() for _ in range(config.n_cores)]
        self._dma_done = VectorClock()

        # Attach: pure observation + the debugger's sync contract.
        soc.acquire_sync()
        soc.bus.observe(self._on_bus_access)
        for cpu in soc.cores:
            cpu.add_irq_hook(self._on_irq)
        soc.dma.completion_hooks.append(self._on_dma_complete)
        self._attached = True

    # ------------------------------------------------------------------
    def detach(self) -> None:
        """Release the platform: stop observing, drop the sync hold."""
        if not self._attached:
            return
        self._attached = False
        self.soc.bus.unobserve(self._on_bus_access)
        for cpu in self.soc.cores:
            cpu.remove_irq_hook(self._on_irq)
        self.soc.dma.completion_hooks.remove(self._on_dma_complete)
        self.soc.release_sync()

    # ------------------------------------------------------------------
    # thread bookkeeping
    # ------------------------------------------------------------------
    def _vc_of(self, thread: str) -> VectorClock:
        vc = self._vc.get(thread)
        if vc is None:
            vc = VectorClock({thread: 1})
            self._vc[thread] = vc
        return vc

    def _pc_of(self, master: str) -> int:
        if master.startswith("core"):
            try:
                return self.soc.cores[int(master[4:])].pc
            except (ValueError, IndexError):
                return -1
        return -1

    # ------------------------------------------------------------------
    # the bus observer
    # ------------------------------------------------------------------
    def _on_bus_access(self, kind: str, address: int, value: int,
                       master: str) -> None:
        if address < self._ram_words:
            self._on_ram(kind, address, master)
        elif self._sem_lo <= address < self._sem_hi:
            self._on_semaphore(kind, address - self._sem_lo, value, master)
        elif self._mbox_lo <= address < self._mbox_hi:
            port, reg = divmod(address - self._mbox_lo, MBOX_STRIDE)
            self._on_mailbox(kind, port, reg, value, master)
        elif address == self._dma_lo + DMA_CTRL:
            if kind == "write" and value & 1:
                # core -> DMA engine: the transfer sees the starter's writes.
                self._vc_of(DMA_THREAD).join(self._vc_of(master))
                self._vc_of(master).tick(master)
        elif address == self._dma_lo + DMA_STATUS:
            if kind == "read" and value & 2:
                # done-bit poll: DMA completion -> polling thread.
                self._vc_of(master).join(self._dma_done)

    # ------------------------------------------------------------------
    # shared-RAM shadow + race check
    # ------------------------------------------------------------------
    def _on_ram(self, kind: str, address: int, master: str) -> None:
        self.checked_accesses += 1
        vc = self._vc_of(master)
        pc = self._pc_of(master)
        cycle = self.soc.sim.now
        state = self._shadow.get(address)
        if state is None:
            state = self._shadow[address] = _WordState()
        write = state.write
        if kind == "read":
            if write is not None and write[0] != master and \
                    not vc.ordered_before(write[0], write[1]):
                self._report(address, "write-read",
                             Site(write[0], write[2], write[3]),
                             Site(master, pc, cycle))
            state.reads[master] = (vc.get(master), pc, cycle)
            return
        # write (a swap arrives as a read then a write)
        if write is not None and write[0] != master and \
                not vc.ordered_before(write[0], write[1]):
            self._report(address, "write-write",
                         Site(write[0], write[2], write[3]),
                         Site(master, pc, cycle))
        for reader, (clock, rpc, rcycle) in state.reads.items():
            if reader != master and not vc.ordered_before(reader, clock):
                self._report(address, "read-write",
                             Site(reader, rpc, rcycle),
                             Site(master, pc, cycle))
        state.write = (master, vc.get(master), pc, cycle)
        state.reads.clear()

    # ------------------------------------------------------------------
    # synchronization edges
    # ------------------------------------------------------------------
    def _on_semaphore(self, kind: str, index: int, value: int,
                      master: str) -> None:
        if kind == "read":
            # Read-to-acquire: a returned 0 is a successful acquire.
            if value == 0:
                self._vc_of(master).join(self._sem_clock[index])
            self._sem_shadow[index] = 1
        elif value == 0:
            # A store of 0 releases -- but only if the semaphore was held
            # (mirrors the SemaphoreBank release-counter guard).
            if self._sem_shadow[index] != 0:
                vc = self._vc_of(master)
                self._sem_clock[index].join(vc)
                vc.tick(master)
            self._sem_shadow[index] = 0
        else:
            self._sem_shadow[index] = int(value)

    def _on_mailbox(self, kind: str, port: int, reg: int, value: int,
                    master: str) -> None:
        if kind == "write":
            if reg == TX_DST:
                if 0 <= value < len(self._mbox_fifo):
                    self._mbox_dst[port] = int(value)
            elif reg == TX_DATA:
                dest = self._mbox_dst[port]
                if len(self._mbox_fifo[dest]) < self._mbox_capacity:
                    vc = self._vc_of(master)
                    snapshot = vc.snapshot()
                    self._mbox_fifo[dest].append(snapshot)
                    self._doorbell_clock[dest].join(snapshot)
                    vc.tick(master)
                # A dropped word synchronizes nothing.
        elif reg == RX_DATA:
            fifo = self._mbox_fifo[port]
            if fifo:
                self._vc_of(master).join(fifo.popleft())

    def _on_dma_complete(self, dma: Any) -> None:
        vc = self._vc_of(DMA_THREAD)
        self._dma_done.join(vc)
        vc.tick(DMA_THREAD)

    def _on_irq(self, cpu: Any, phase: str) -> None:
        thread = f"core{cpu.core_id}"
        vc = self._vc_of(thread)
        if phase == "enter":
            # Interrupt delivery: join the clocks of every device line
            # that is pending and unmasked on this core's controller.
            intc = self.soc.intcs[cpu.core_id]
            active = intc.pending & intc.mask
            if not active:
                return
            for line, signal in intc.sources.items():
                if active & (1 << line):
                    clock = self._clock_of_signal(signal)
                    if clock is not None:
                        vc.join(clock)
        else:  # iret: close the ISR segment
            vc.tick(thread)

    def _clock_of_signal(self, signal: Any) -> Optional[VectorClock]:
        if signal is self.soc.dma.irq:
            return self._dma_done
        for core_id, doorbell in enumerate(self.soc.mailboxes.doorbells):
            if signal is doorbell:
                return self._doorbell_clock[core_id]
        return None  # timers et al.: no cross-thread data to order

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def _report(self, address: int, kind: str, prior: Site,
                current: Site) -> None:
        race = Race(address, kind, prior, current)
        key = race.key
        count = self.race_counts.get(key)
        if count is not None:
            self.race_counts[key] = count + 1
            return
        self.race_counts[key] = 1
        self.races.append(race)
        if self.metrics is not None:
            self.metrics.counter("race.reports").inc()
            self.metrics.counter(f"race.{kind.replace('-', '_')}").inc()
        if self.sink is not None:
            self.sink.instant("race.data_race", track=self.track,
                              ts=self.soc.sim.now, address=address,
                              kind=kind, prior=str(prior),
                              current=str(current))

    def report(self) -> str:
        """Deterministic text report: same run => byte-identical text."""
        lines = [f"data races: {len(self.races)} "
                 f"(checked {self.checked_accesses} shared-RAM accesses)"]
        for race in self.races:
            lines.append(f"  {race} (x{self.race_counts[race.key]})")
        return "\n".join(lines) + "\n"


def attach_sanitizer(soc: SoC, sink: Optional[Any] = None,
                     metrics: Optional[Any] = None) -> RaceSanitizer:
    """Attach a :class:`RaceSanitizer` to ``soc`` and return it."""
    return RaceSanitizer(soc, sink=sink, metrics=metrics)


__all__ = ["Race", "RaceSanitizer", "Site", "attach_sanitizer"]
