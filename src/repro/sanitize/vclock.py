"""Vector clocks for the happens-before model.

A :class:`VectorClock` maps thread names ("core0", "dma", ...) to scalar
logical clocks.  The platform's hardware synchronization edges (semaphore
release/acquire, mailbox send/receive, DMA start/completion, interrupt
delivery) move snapshots of these clocks between threads; an access *a*
by thread ``t`` happened-before the current point of thread ``u`` iff
``a``'s epoch ``(t, c)`` satisfies ``c <= VC_u[t]``.

Clocks are sparse: an absent component is 0.  Snapshots are plain dicts,
cheap to copy and to join.
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple


class VectorClock:
    """A sparse vector clock over named threads."""

    __slots__ = ("clocks",)

    def __init__(self, clocks: Dict[str, int] | None = None) -> None:
        self.clocks: Dict[str, int] = dict(clocks) if clocks else {}

    # ------------------------------------------------------------------
    def get(self, thread: str) -> int:
        return self.clocks.get(thread, 0)

    def tick(self, thread: str) -> int:
        """Advance ``thread``'s own component; returns the new value."""
        value = self.clocks.get(thread, 0) + 1
        self.clocks[thread] = value
        return value

    def join(self, other: "VectorClock") -> None:
        """Component-wise maximum, in place (the acquire side of an edge)."""
        mine = self.clocks
        for thread, value in other.clocks.items():
            if value > mine.get(thread, 0):
                mine[thread] = value

    def snapshot(self) -> "VectorClock":
        """An independent copy (the release side of an edge)."""
        return VectorClock(self.clocks)

    def ordered_before(self, thread: str, clock: int) -> bool:
        """Is the epoch ``(thread, clock)`` happened-before this clock?"""
        return clock <= self.clocks.get(thread, 0)

    # ------------------------------------------------------------------
    def items(self) -> Iterator[Tuple[str, int]]:
        return iter(sorted(self.clocks.items()))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, VectorClock):
            return NotImplemented
        mine = {t: c for t, c in self.clocks.items() if c}
        theirs = {t: c for t, c in other.clocks.items() if c}
        return mine == theirs

    def __repr__(self) -> str:
        inner = ", ".join(f"{t}:{c}" for t, c in self.items())
        return f"VC({inner})"


__all__ = ["VectorClock"]
