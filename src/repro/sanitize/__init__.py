"""Non-intrusive correctness tooling over the simulated platform.

The paper's central virtual-platform argument (section VII, experiment
E11) is that simulation makes concurrency bugs *observable without
perturbing them*.  This package adds the missing correctness layer on
top of that observability: a happens-before data-race sanitizer that
rides the existing observer infrastructure as a pure observer of the
event-exact ISS path.

- :class:`RaceSanitizer` / :func:`attach_sanitizer` -- shadow-memory
  race detection over a :class:`~repro.vp.soc.SoC` (vector clocks over
  semaphore, mailbox, DMA and interrupt edges);
- :class:`NoCOrderTracker` -- happens-before clocks over the manycore
  NoC's message and reliable-mode ack edges;
- :class:`VectorClock` -- the shared clock primitive.

Zero cost when detached: no hook in the ISS, bus, peripherals or NoC
does any work unless a sanitizer is installed.
"""

from repro.sanitize.detector import (Race, RaceSanitizer, Site,
                                     attach_sanitizer)
from repro.sanitize.noc import NoCOrderTracker
from repro.sanitize.vclock import VectorClock

__all__ = [
    "NoCOrderTracker",
    "Race",
    "RaceSanitizer",
    "Site",
    "VectorClock",
    "attach_sanitizer",
]
