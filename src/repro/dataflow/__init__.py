"""Synchronous / cyclo-static dataflow substrate (paper section III).

The Hijdra project's data-driven systems (and the buffer-capacity work of
Wiggers et al., paper ref [5]) are built on (C)SDF graphs.  This package
provides:

- :mod:`repro.dataflow.graph` -- SDF/CSDF graph model;
- :mod:`repro.dataflow.repetition` -- balance equations, consistency and
  repetition vectors;
- :mod:`repro.dataflow.simulate` -- deterministic self-timed execution with
  bounded buffers (back-pressure) and per-firing execution-time models;
- :mod:`repro.dataflow.throughput` -- throughput from self-timed execution
  and max-cycle-ratio analysis on the HSDF expansion;
- :mod:`repro.dataflow.buffer_sizing` -- minimal buffer capacities for a
  required throughput (the design-time analysis that makes wait-free
  periodic source/sink execution possible);
- :mod:`repro.dataflow.schedule_existence` -- the section-III design-time
  check: does a valid schedule exist such that the periodic source and sink
  execute wait-free?
"""

from repro.dataflow.graph import Actor, CSDFGraph, Edge, SDFGraph
from repro.dataflow.repetition import (
    InconsistentGraph,
    consistency_check,
    repetition_vector,
)
from repro.dataflow.simulate import (
    FiringRecord,
    SelfTimedResult,
    simulate_self_timed,
)
from repro.dataflow.throughput import (
    hsdf_expansion,
    max_cycle_ratio,
    throughput_self_timed,
)
from repro.dataflow.buffer_sizing import (
    BufferSizingResult,
    minimal_buffer_sizes,
)
from repro.dataflow.schedule_existence import (
    ScheduleExistence,
    check_wait_free_schedule,
)

__all__ = [
    "Actor", "BufferSizingResult", "CSDFGraph", "Edge", "FiringRecord",
    "InconsistentGraph", "SDFGraph", "ScheduleExistence", "SelfTimedResult",
    "check_wait_free_schedule", "consistency_check", "hsdf_expansion",
    "max_cycle_ratio", "minimal_buffer_sizes", "repetition_vector",
    "simulate_self_timed", "throughput_self_timed",
]
