"""Buffer-capacity computation for (C)SDF graphs (paper ref [5]).

Wiggers et al. compute buffer capacities for cyclo-static real-time systems
with back-pressure such that a required throughput is met.  This module
implements the same *problem* with a simulation-guided search:

1. start every edge at its structural minimum capacity
   (``max(prod) + max(cons) + initial tokens`` is always sufficient to fire
   once; the search starts lower, at ``max(max(prod), max(cons), tokens)``);
2. simulate self-timed execution with back-pressure;
3. while the achieved throughput is below the requirement, grow the
   capacity of the edge whose full buffer blocked its producer most often;
4. stop when the requirement is met or capacities reach the unbounded
   throughput's requirements.

The result is a per-edge capacity vector that admits a schedule in which a
periodic source/sink runs wait-free -- the design-time existence argument
of paper section III.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.dataflow.graph import Edge, SDFGraph
from repro.dataflow.repetition import firings_per_iteration
from repro.dataflow.throughput import throughput_self_timed


@dataclass
class BufferSizingResult:
    """Capacities found plus the throughput they achieve."""

    capacities: Dict[str, int]
    achieved_throughput: float
    required_throughput: float
    iterations: int
    feasible: bool
    total_buffer_tokens: int = 0

    def __post_init__(self) -> None:
        self.total_buffer_tokens = sum(self.capacities.values())


def _structural_minimum(edge: Edge) -> int:
    """Smallest capacity under which a single firing can ever complete."""
    max_prod = max(edge.prod) if isinstance(edge.prod, (list, tuple)) \
        else int(edge.prod)
    max_cons = max(edge.cons) if isinstance(edge.cons, (list, tuple)) \
        else int(edge.cons)
    return max(max_prod, max_cons, edge.tokens, 1)


def minimal_buffer_sizes(graph: SDFGraph,
                         required_throughput: Optional[float] = None,
                         max_rounds: int = 400,
                         measure_iterations: int = 20) -> BufferSizingResult:
    """Search minimal per-edge capacities meeting ``required_throughput``.

    With ``required_throughput=None`` the target is the graph's unbounded
    (maximal self-timed) throughput, i.e. the capacities stop costing any
    performance.
    """
    unbounded = throughput_self_timed(graph, iterations=measure_iterations)
    if required_throughput is None:
        required = unbounded * (1 - 1e-9)
    else:
        required = required_throughput
    feasible_target = required <= unbounded * (1 + 1e-9)

    capacities = {edge.name: _structural_minimum(edge)
                  for edge in graph.edges}

    reps = firings_per_iteration(graph)
    rounds = 0
    achieved = 0.0
    while rounds < max_rounds:
        rounds += 1
        bounded = graph.with_capacities(capacities)
        achieved = throughput_self_timed(bounded,
                                         iterations=measure_iterations)
        if achieved >= required:
            break
        # Diagnose which edge blocks the most and grow it.
        from repro.dataflow.simulate import simulate_self_timed
        probe = simulate_self_timed(
            bounded, stop_after_iterations=measure_iterations,
            repetition=reps,
            max_firings=sum(reps.values()) * measure_iterations + 10_000)
        if probe.edge_space_blocks:
            worst = max(probe.edge_space_blocks.items(),
                        key=lambda item: (item[1], item[0]))[0]
            capacities[worst] += 1
        else:
            # Deadlock or start-up artifact with no recorded block: grow the
            # smallest buffer (deterministically by name).
            worst = min(capacities.items(),
                        key=lambda item: (item[1], item[0]))[0]
            capacities[worst] += 1
    return BufferSizingResult(capacities, achieved, required, rounds,
                              feasible=feasible_target and achieved >= required)


__all__ = ["BufferSizingResult", "minimal_buffer_sizes"]
