"""Throughput analysis: self-timed measurement and max-cycle-ratio bound.

Two complementary analyses:

- :func:`throughput_self_timed` measures the steady-state iteration rate of
  a self-timed execution (works for SDF and CSDF, bounded or unbounded
  buffers).
- :func:`max_cycle_ratio` computes the analytic throughput bound
  ``1 / MCR`` of the homogeneous (HSDF) expansion, where MCR is the maximum
  over all cycles of (total execution time on the cycle / total initial
  tokens on the cycle).  This is the classical design-time guarantee used
  by predictable multiprocessor systems like CoMPSoC (paper ref [4]).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import networkx as nx

from repro.dataflow.graph import SDFGraph
from repro.dataflow.repetition import firings_per_iteration
from repro.dataflow.simulate import simulate_self_timed


def throughput_self_timed(graph: SDFGraph, iterations: int = 50,
                          warmup: int = 10) -> float:
    """Steady-state iterations/time from a self-timed run.

    Runs ``warmup + iterations`` graph iterations and measures the rate of
    a reference actor over the post-warmup window.  The window spans from
    the first firing of iteration ``warmup`` to the first firing of the
    last iteration, so at least two measured iterations are required --
    with one the window is a single point and no rate exists.
    """
    if iterations < 2:
        raise ValueError("throughput_self_timed needs iterations >= 2 "
                         "to measure a rate")
    reps = firings_per_iteration(graph)
    total = warmup + iterations
    result = simulate_self_timed(
        graph, stop_after_iterations=total, repetition=reps,
        max_firings=sum(reps.values()) * total + 10_000)
    if result.deadlocked:
        return 0.0
    reference = min(graph.actors)  # deterministic choice
    starts = result.start_times(reference)
    per_iter = reps[reference]
    if len(starts) < per_iter * total:
        return 0.0
    # Time of the first firing of iteration `warmup` and of iteration `total`.
    first = starts[warmup * per_iter]
    last_iteration_first = starts[(total - 1) * per_iter]
    span = last_iteration_first - first
    if span <= 0:
        return float("inf")
    return (total - 1 - warmup) / span


def hsdf_expansion(graph: SDFGraph) -> nx.MultiDiGraph:
    """Expand an SDF graph into its homogeneous (HSDF) equivalent.

    Every actor ``a`` becomes ``reps[a]`` copies ``(a, k)``.  Every edge is
    unrolled token-by-token: the token produced by firing ``i`` of the
    producer is consumed by the firing of the consumer determined by the
    cumulative-rate mapping; initial tokens shift consumption indices and
    become inter-iteration (token-carrying) edges.

    Only scalar-rate (pure SDF) graphs are supported; CSDF callers should
    measure throughput with :func:`throughput_self_timed` instead.
    """
    for edge in graph.edges:
        if isinstance(edge.prod, (list, tuple)) or \
                isinstance(edge.cons, (list, tuple)):
            raise ValueError("hsdf_expansion supports scalar-rate SDF only")
    reps = firings_per_iteration(graph)
    hsdf = nx.MultiDiGraph()
    for name, count in reps.items():
        duration = graph.actors[name].time_of_firing(0)
        for k in range(count):
            hsdf.add_node((name, k), exec_time=duration)
    for edge in graph.edges:
        prod, cons = int(edge.prod), int(edge.cons)
        reps_src = reps[edge.src]
        total_tokens = prod * reps_src
        for produced_index in range(total_tokens):
            src_firing = produced_index // prod
            # Token position in the stream, offset by initial tokens.
            position = produced_index + edge.tokens
            dst_firing_global = position // cons
            delay = dst_firing_global // reps[edge.dst]
            dst_firing = dst_firing_global % reps[edge.dst]
            hsdf.add_edge((edge.src, src_firing), (edge.dst, dst_firing),
                          tokens=delay, name=edge.name)
    # Sequential-firing constraint of each actor (no auto-concurrency):
    for name, count in reps.items():
        for k in range(count):
            nxt = (k + 1) % count
            hsdf.add_edge((name, k), (name, nxt),
                          tokens=1 if nxt == 0 else 0, name=f"{name}.seq")
    return hsdf


def max_cycle_ratio(graph: SDFGraph,
                    tolerance: float = 1e-9) -> Tuple[float, List]:
    """Maximum cycle ratio of the HSDF expansion.

    Returns ``(mcr, critical_cycle_nodes)``.  The throughput bound of the
    graph is ``1 / mcr`` iterations per time unit.  Uses binary search on
    the ratio with Bellman-Ford negative-cycle detection (Lawler's method).
    """
    hsdf = hsdf_expansion(graph)
    exec_times = nx.get_node_attributes(hsdf, "exec_time")

    total_time = sum(exec_times.values()) or 1.0
    low, high = 0.0, float(total_time) * 2 + 1.0

    def has_positive_cycle(ratio: float) -> Optional[List]:
        """Cycle with weight(time) - ratio * tokens > 0, via Bellman-Ford on
        negated weights.  Parallel edges are collapsed to the most negative
        one (equivalent for negative-cycle existence)."""
        weighted = nx.DiGraph()
        weighted.add_nodes_from(hsdf.nodes)
        for u, v, data in hsdf.edges(data=True):
            weight = -(exec_times[u] - ratio * data["tokens"])
            if weighted.has_edge(u, v):
                weight = min(weight, weighted[u][v]["weight"])
            weighted.add_edge(u, v, weight=weight)
        # networkx's find_negative_cycle mishandles self-loops; check them
        # here and strip them from the searched graph.
        for node in list(weighted.nodes):
            if weighted.has_edge(node, node):
                if weighted[node][node]["weight"] < 0:
                    return [node, node]
                weighted.remove_edge(node, node)
        try:
            cycle = nx.find_negative_cycle(weighted, next(iter(weighted.nodes)))
            return cycle
        except nx.NetworkXError:
            pass
        # find_negative_cycle only explores from one source; check all
        # components via a super-source.
        super_source = ("__source__", -1)
        weighted.add_node(super_source)
        for node in hsdf.nodes:
            weighted.add_edge(super_source, node, weight=0.0)
        try:
            return nx.find_negative_cycle(weighted, super_source)
        except nx.NetworkXError:
            return None

    critical: List = []
    while high - low > tolerance * max(1.0, high):
        mid = (low + high) / 2
        cycle = has_positive_cycle(mid)
        if cycle is not None:
            critical = cycle
            low = mid
        else:
            high = mid
    return high, critical


__all__ = ["hsdf_expansion", "max_cycle_ratio", "throughput_self_timed"]
