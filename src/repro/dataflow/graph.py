"""SDF and CSDF graph models.

An :class:`SDFGraph` is a multigraph of :class:`Actor` nodes connected by
:class:`Edge` channels with fixed production/consumption rates and initial
tokens.  A :class:`CSDFGraph` generalizes rates and execution times to
cyclically repeating per-phase sequences, which is the model the Hijdra /
CoMPSoC work uses for stream-processing applications (car radio, mobile
phone baseband -- paper section III).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

Rate = Union[int, Sequence[int]]
ExecTime = Union[float, Sequence[float]]


@dataclass
class Actor:
    """A dataflow actor.

    ``exec_time`` is either a scalar (SDF) or a per-phase sequence (CSDF).
    ``exec_time_fn`` optionally overrides it with a per-firing callable
    ``fn(firing_index) -> float`` -- this is how the E4 bench injects
    varying / overrunning execution times.
    """

    name: str
    exec_time: ExecTime = 1.0
    exec_time_fn: Optional[Callable[[int], float]] = None
    phases: int = 1

    def __post_init__(self) -> None:
        if isinstance(self.exec_time, (list, tuple)):
            if not self.exec_time:
                raise ValueError(f"actor {self.name!r}: empty exec_time list")
            self.phases = max(self.phases, len(self.exec_time))
        if self.phases < 1:
            raise ValueError(f"actor {self.name!r}: phases must be >= 1")

    def time_of_firing(self, firing_index: int) -> float:
        """Execution time of the ``firing_index``-th firing (0-based)."""
        if self.exec_time_fn is not None:
            return float(self.exec_time_fn(firing_index))
        if isinstance(self.exec_time, (list, tuple)):
            return float(self.exec_time[firing_index % len(self.exec_time)])
        return float(self.exec_time)

    def __repr__(self) -> str:
        return f"Actor({self.name!r})"


@dataclass
class Edge:
    """A FIFO channel between two actors.

    Rates are scalars (SDF) or per-phase sequences (CSDF).  ``capacity``
    of ``None`` means unbounded (no back-pressure).
    """

    src: str
    dst: str
    prod: Rate = 1
    cons: Rate = 1
    tokens: int = 0
    capacity: Optional[int] = None
    name: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            self.name = f"{self.src}->{self.dst}"
        for label, rate in (("prod", self.prod), ("cons", self.cons)):
            values = rate if isinstance(rate, (list, tuple)) else [rate]
            if any(v < 0 for v in values):
                raise ValueError(f"edge {self.name}: negative {label} rate")
            if not any(values):
                raise ValueError(f"edge {self.name}: all-zero {label} rate")
        if self.tokens < 0:
            raise ValueError(f"edge {self.name}: negative initial tokens")
        if self.capacity is not None and self.capacity < 1:
            raise ValueError(f"edge {self.name}: capacity must be >= 1")

    def prod_at(self, firing_index: int) -> int:
        if isinstance(self.prod, (list, tuple)):
            return int(self.prod[firing_index % len(self.prod)])
        return int(self.prod)

    def cons_at(self, firing_index: int) -> int:
        if isinstance(self.cons, (list, tuple)):
            return int(self.cons[firing_index % len(self.cons)])
        return int(self.cons)

    def prod_per_cycle(self) -> Tuple[int, int]:
        """(total tokens produced per rate-cycle, cycle length)."""
        if isinstance(self.prod, (list, tuple)):
            return sum(self.prod), len(self.prod)
        return int(self.prod), 1

    def cons_per_cycle(self) -> Tuple[int, int]:
        if isinstance(self.cons, (list, tuple)):
            return sum(self.cons), len(self.cons)
        return int(self.cons), 1

    def __repr__(self) -> str:
        cap = "inf" if self.capacity is None else self.capacity
        return (f"Edge({self.src}->{self.dst}, prod={self.prod}, "
                f"cons={self.cons}, d={self.tokens}, cap={cap})")


class SDFGraph:
    """A synchronous dataflow graph."""

    csdf = False

    def __init__(self, name: str = "sdf") -> None:
        self.name = name
        self.actors: Dict[str, Actor] = {}
        self.edges: List[Edge] = []

    # -- construction -----------------------------------------------------
    def add_actor(self, name: str, exec_time: ExecTime = 1.0,
                  exec_time_fn: Optional[Callable[[int], float]] = None) -> Actor:
        if name in self.actors:
            raise ValueError(f"duplicate actor {name!r}")
        actor = Actor(name, exec_time, exec_time_fn)
        self.actors[name] = actor
        return actor

    def connect(self, src: str, dst: str, prod: Rate = 1, cons: Rate = 1,
                tokens: int = 0, capacity: Optional[int] = None,
                name: str = "") -> Edge:
        for endpoint in (src, dst):
            if endpoint not in self.actors:
                raise KeyError(f"unknown actor {endpoint!r}")
        edge = Edge(src, dst, prod, cons, tokens, capacity, name)
        self.edges.append(edge)
        return edge

    # -- queries ------------------------------------------------------------
    def in_edges(self, actor: str) -> List[Edge]:
        return [e for e in self.edges if e.dst == actor]

    def out_edges(self, actor: str) -> List[Edge]:
        return [e for e in self.edges if e.src == actor]

    def actor_names(self) -> List[str]:
        return list(self.actors)

    def validate(self) -> None:
        """Raise if the graph references unknown actors (defensive check)."""
        for edge in self.edges:
            if edge.src not in self.actors or edge.dst not in self.actors:
                raise ValueError(f"dangling edge {edge!r}")

    def with_capacities(self, capacities: Dict[str, int]) -> "SDFGraph":
        """A copy of this graph with per-edge capacities applied."""
        clone = type(self)(self.name)
        clone.actors = dict(self.actors)
        for edge in self.edges:
            clone.edges.append(Edge(edge.src, edge.dst, edge.prod, edge.cons,
                                    edge.tokens,
                                    capacities.get(edge.name, edge.capacity),
                                    edge.name))
        return clone

    def __repr__(self) -> str:
        return (f"{type(self).__name__}({self.name!r}, "
                f"{len(self.actors)} actors, {len(self.edges)} edges)")


class CSDFGraph(SDFGraph):
    """A cyclo-static dataflow graph.

    Structurally identical to :class:`SDFGraph`; rates and execution times
    may be per-phase sequences.  The distinction is kept as a class so the
    analyses can check which model they were handed.
    """

    csdf = True

    def add_actor(self, name: str, exec_time: ExecTime = 1.0,
                  exec_time_fn: Optional[Callable[[int], float]] = None) -> Actor:
        return super().add_actor(name, exec_time, exec_time_fn)


__all__ = ["Actor", "CSDFGraph", "Edge", "ExecTime", "Rate", "SDFGraph"]
