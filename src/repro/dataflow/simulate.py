"""Deterministic self-timed execution of (C)SDF graphs.

Self-timed (= data-driven) execution fires every actor as soon as

1. the actor's previous firing has finished (no auto-concurrency),
2. every input edge holds enough tokens, and
3. every *bounded* output edge has enough free space (back-pressure).

This is exactly the execution model of the paper's section III: "the start
of the execution of the tasks is triggered by the arrival of data".  Time
is continuous; token availability is tracked with per-token timestamps so
the schedule is exact, not quantized.

The simulator also supports *timer-triggered* source/sink actors (periodic
firing with a fixed period) so the time-triggered-vs-data-driven benches
can build both system styles from one graph.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

from repro.dataflow.graph import Edge, SDFGraph


@dataclass
class FiringRecord:
    """One completed actor firing."""

    actor: str
    index: int
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class SelfTimedResult:
    """Outcome of a self-timed simulation."""

    firings: List[FiringRecord] = field(default_factory=list)
    firing_counts: Dict[str, int] = field(default_factory=dict)
    end_time: float = 0.0
    deadlocked: bool = False
    blocked_on_space: Dict[str, int] = field(default_factory=dict)
    blocked_on_tokens: Dict[str, int] = field(default_factory=dict)
    # Edge-name -> number of scheduling scans in which that edge's lack of
    # free space blocked its producer (drives the buffer-sizing heuristic).
    edge_space_blocks: Dict[str, int] = field(default_factory=dict)

    def firings_of(self, actor: str) -> List[FiringRecord]:
        return [f for f in self.firings if f.actor == actor]

    def start_times(self, actor: str) -> List[float]:
        return [f.start for f in self.firings_of(actor)]


class _EdgeState:
    """Runtime state of one edge: token and space availability timestamps."""

    def __init__(self, edge: Edge) -> None:
        self.edge = edge
        # Timestamp at which each queued token becomes available.
        self.token_times: Deque[float] = deque([0.0] * edge.tokens)
        # For bounded edges: timestamp at which each free slot opened.
        if edge.capacity is not None:
            free = edge.capacity - edge.tokens
            if free < 0:
                raise ValueError(
                    f"edge {edge.name}: initial tokens exceed capacity")
            self.space_times: Optional[Deque[float]] = deque([0.0] * free)
        else:
            self.space_times = None

    def tokens_ready_at(self, count: int) -> Optional[float]:
        """Earliest time ``count`` tokens are all available, or None."""
        if count == 0:
            return 0.0
        if len(self.token_times) < count:
            return None
        return self.token_times[count - 1]

    def space_ready_at(self, count: int) -> Optional[float]:
        if self.space_times is None or count == 0:
            return 0.0
        if len(self.space_times) < count:
            return None
        return self.space_times[count - 1]

    def consume(self, count: int, at: float) -> None:
        for _ in range(count):
            self.token_times.popleft()
        if self.space_times is not None:
            for _ in range(count):
                self.space_times.append(at)

    def produce(self, count: int, at: float) -> None:
        for _ in range(count):
            self.token_times.append(at)
        if self.space_times is not None:
            for _ in range(count):
                self.space_times.popleft()


def simulate_self_timed(graph: SDFGraph,
                        horizon: float = float("inf"),
                        max_firings: int = 100_000,
                        periodic_actors: Optional[Dict[str, float]] = None,
                        stop_after_iterations: Optional[int] = None,
                        repetition: Optional[Dict[str, int]] = None) -> SelfTimedResult:
    """Run self-timed execution and return the exact firing schedule.

    ``periodic_actors`` maps actor names to periods: such an actor's k-th
    firing may not *start* before ``k * period`` (a timer-triggered source
    or sink).  If it also lacks tokens/space at that moment it blocks --
    the wait-free analysis in :mod:`repro.dataflow.schedule_existence`
    checks exactly whether that ever happens.

    ``stop_after_iterations`` stops once every actor has fired
    ``iterations * repetition[actor]`` times (requires ``repetition``).
    """
    periodic = dict(periodic_actors or {})
    edge_states = {id(edge): _EdgeState(edge) for edge in graph.edges}
    firing_index: Dict[str, int] = {name: 0 for name in graph.actors}
    free_at: Dict[str, float] = {name: 0.0 for name in graph.actors}
    result = SelfTimedResult()
    result.firing_counts = {name: 0 for name in graph.actors}
    result.blocked_on_space = {name: 0 for name in graph.actors}
    result.blocked_on_tokens = {name: 0 for name in graph.actors}

    in_edges = {name: graph.in_edges(name) for name in graph.actors}
    out_edges = {name: graph.out_edges(name) for name in graph.actors}

    target_counts: Optional[Dict[str, int]] = None
    if stop_after_iterations is not None:
        if repetition is None:
            raise ValueError("stop_after_iterations requires repetition")
        target_counts = {name: repetition[name] * stop_after_iterations
                         for name in graph.actors}

    completed = 0
    while completed < max_firings:
        if target_counts is not None and all(
                result.firing_counts[name] >= target_counts[name]
                for name in graph.actors):
            break
        # Find the actor that can fire earliest (deterministic tie-break by
        # actor name).
        best: Optional[Tuple[float, str]] = None
        any_token_blocked = False
        for name in graph.actors:
            if target_counts is not None and \
                    result.firing_counts[name] >= target_counts[name]:
                continue
            index = firing_index[name]
            ready = free_at[name]
            if name in periodic:
                ready = max(ready, index * periodic[name])
            blocked = False
            for edge in in_edges[name]:
                need = edge.cons_at(index)
                available = edge_states[id(edge)].tokens_ready_at(need)
                if available is None:
                    blocked = True
                    result.blocked_on_tokens[name] += 1
                    break
                ready = max(ready, available)
            if blocked:
                any_token_blocked = True
                continue
            for edge in out_edges[name]:
                need = edge.prod_at(index)
                available = edge_states[id(edge)].space_ready_at(need)
                if available is None:
                    blocked = True
                    result.blocked_on_space[name] += 1
                    result.edge_space_blocks[edge.name] = \
                        result.edge_space_blocks.get(edge.name, 0) + 1
                    break
                ready = max(ready, available)
            if blocked:
                continue
            if best is None or (ready, name) < best:
                best = (ready, name)
        if best is None:
            result.deadlocked = any(
                result.firing_counts[name] < (target_counts or {}).get(name, 1)
                for name in graph.actors) if target_counts else True
            break
        start, name = best
        if start > horizon:
            break
        index = firing_index[name]
        duration = graph.actors[name].time_of_firing(index)
        end = start + duration
        for edge in in_edges[name]:
            edge_states[id(edge)].consume(edge.cons_at(index), start)
        for edge in out_edges[name]:
            edge_states[id(edge)].produce(edge.prod_at(index), end)
        firing_index[name] = index + 1
        free_at[name] = end
        result.firings.append(FiringRecord(name, index, start, end))
        result.firing_counts[name] += 1
        result.end_time = max(result.end_time, end)
        completed += 1

    return result


__all__ = ["FiringRecord", "SelfTimedResult", "simulate_self_timed"]
