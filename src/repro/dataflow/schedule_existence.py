"""Design-time wait-free schedule existence (paper section III).

"For our data-driven system it is sufficient to show at design time that a
valid schedule exists such that the periodic source and sink task can
execute wait-free."

Given a (C)SDF graph with worst-case execution times and buffer
capacities, plus a source and a sink actor with a common period, this
module simulates the worst-case self-timed schedule and checks that:

- the source never blocks (it finds buffer space exactly at each period), and
- the sink never blocks (tokens are always present at each period).

Because self-timed execution is monotonic in execution times (firings can
only move *later* if execution times grow, never earlier), a wait-free
worst-case schedule bounds every actual schedule -- this is the paper's
"worst-case schedule that bounds the schedules ... that can occur in the
implementation".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.dataflow.graph import SDFGraph
from repro.dataflow.repetition import firings_per_iteration
from repro.dataflow.simulate import SelfTimedResult, simulate_self_timed


@dataclass
class ScheduleExistence:
    """Verdict of the design-time check."""

    exists: bool
    source_lateness: float
    sink_lateness: float
    checked_iterations: int
    details: str = ""
    schedule: Optional[SelfTimedResult] = None


def check_wait_free_schedule(graph: SDFGraph, source: str, sink: str,
                             period: float,
                             iterations: int = 50,
                             startup_iterations: int = 2,
                             sink_latency: Optional[float] = None) -> ScheduleExistence:
    """Check that source and sink can run strictly periodically, wait-free.

    The source's k-th firing is *required* to start at ``k * period``; the
    sink's k-th firing at ``sink_latency + k * period`` (default: whatever
    offset the self-timed schedule reaches after ``startup_iterations``
    iterations, i.e. the steady-state latency).  The check passes when the
    worst-case self-timed schedule never delays those firings.
    """
    if source not in graph.actors or sink not in graph.actors:
        raise KeyError("source/sink must be actors of the graph")
    reps = firings_per_iteration(graph)
    result = simulate_self_timed(
        graph,
        periodic_actors={source: period / reps[source]},
        stop_after_iterations=iterations,
        repetition=reps,
        max_firings=sum(reps.values()) * iterations + 10_000)

    if result.deadlocked:
        return ScheduleExistence(False, float("inf"), float("inf"),
                                 iterations, "worst-case schedule deadlocks",
                                 result)

    source_starts = result.start_times(source)
    sink_starts = result.start_times(sink)
    per_src = reps[source]
    per_sink = reps[sink]
    needed_src = per_src * iterations
    needed_sink = per_sink * iterations
    if len(source_starts) < needed_src or len(sink_starts) < needed_sink:
        return ScheduleExistence(False, float("inf"), float("inf"),
                                 iterations,
                                 "source or sink starved before the horizon",
                                 result)

    # Source: firing k must start exactly at k * (period / per_src).
    src_interval = period / per_src
    source_lateness = max(
        start - k * src_interval for k, start in enumerate(source_starts))

    # Sink: steady-state offset measured after startup, then strict
    # periodicity required.
    sink_interval = period / per_sink
    anchor_index = per_sink * startup_iterations
    if sink_latency is None:
        offset = sink_starts[anchor_index] - anchor_index * sink_interval
    else:
        offset = sink_latency
    sink_lateness = max(
        start - (offset + k * sink_interval)
        for k, start in enumerate(sink_starts[anchor_index:],
                                  start=anchor_index))

    tolerance = 1e-9 * max(1.0, period)
    exists = source_lateness <= tolerance and sink_lateness <= tolerance
    details = (f"source lateness {source_lateness:.3g}, "
               f"sink lateness {sink_lateness:.3g} "
               f"(sink steady-state latency {offset:.3g})")
    return ScheduleExistence(exists, source_lateness, sink_lateness,
                             iterations, details, result)


__all__ = ["ScheduleExistence", "check_wait_free_schedule"]
