"""Balance equations, consistency, and repetition vectors for (C)SDF.

For every edge ``src -prod-> cons- dst`` the balance equation is

    q[src] * prod_per_cycle(src) / phases(src)  ==  q[dst] * cons_per_cycle ...

For CSDF we use the standard normalization: the repetition vector counts
*phase cycles*; per-edge, one cycle of the producer emits ``sum(prod)``
tokens and one cycle of the consumer absorbs ``sum(cons)``.
"""

from __future__ import annotations

from fractions import Fraction
from math import gcd
from typing import Dict, List

from repro.dataflow.graph import SDFGraph


class InconsistentGraph(Exception):
    """Raised when the balance equations only admit the zero solution."""


def repetition_vector(graph: SDFGraph) -> Dict[str, int]:
    """Smallest positive integer repetition vector of the graph.

    For CSDF the entries count complete phase cycles; multiply by an
    actor's phase count to get firings per iteration.

    Raises :class:`InconsistentGraph` for rate-inconsistent graphs and
    ``ValueError`` for graphs with no actors.
    """
    if not graph.actors:
        raise ValueError("empty graph has no repetition vector")
    ratios: Dict[str, Fraction] = {}
    # Propagate ratios over the (undirected) connectivity of the graph.
    names = list(graph.actors)
    adjacency: Dict[str, List] = {name: [] for name in names}
    for edge in graph.edges:
        prod_total, _ = edge.prod_per_cycle()
        cons_total, _ = edge.cons_per_cycle()
        # q[src] * prod_total == q[dst] * cons_total
        adjacency[edge.src].append((edge.dst, Fraction(prod_total, cons_total)))
        adjacency[edge.dst].append((edge.src, Fraction(cons_total, prod_total)))

    for start in names:
        if start in ratios:
            continue
        ratios[start] = Fraction(1)
        stack = [start]
        while stack:
            current = stack.pop()
            for neighbor, factor in adjacency[current]:
                implied = ratios[current] * factor
                if neighbor in ratios:
                    if ratios[neighbor] != implied:
                        raise InconsistentGraph(
                            f"balance equations conflict at actor "
                            f"{neighbor!r}: {ratios[neighbor]} vs {implied}")
                else:
                    ratios[neighbor] = implied
                    stack.append(neighbor)

    # Scale to smallest positive integers.
    denominators = [ratio.denominator for ratio in ratios.values()]
    scale = 1
    for den in denominators:
        scale = scale * den // gcd(scale, den)
    integered = {name: int(ratio * scale) for name, ratio in ratios.items()}
    common = 0
    for value in integered.values():
        common = gcd(common, value)
    if common > 1:
        integered = {name: value // common for name, value in integered.items()}
    if any(value <= 0 for value in integered.values()):
        raise InconsistentGraph("non-positive repetition entry")
    return integered


def consistency_check(graph: SDFGraph) -> bool:
    """True if the graph is sample-rate consistent."""
    try:
        repetition_vector(graph)
    except InconsistentGraph:
        return False
    return True


def firings_per_iteration(graph: SDFGraph) -> Dict[str, int]:
    """Firings (not phase cycles) of each actor in one graph iteration."""
    reps = repetition_vector(graph)
    result: Dict[str, int] = {}
    for name, cycles in reps.items():
        actor = graph.actors[name]
        phase_count = actor.phases
        # Phases can also be implied by per-phase edge rates.
        for edge in graph.out_edges(name):
            if isinstance(edge.prod, (list, tuple)):
                phase_count = max(phase_count, len(edge.prod))
        for edge in graph.in_edges(name):
            if isinstance(edge.cons, (list, tuple)):
                phase_count = max(phase_count, len(edge.cons))
        result[name] = cycles * phase_count
    return result


__all__ = ["InconsistentGraph", "consistency_check", "firings_per_iteration",
           "repetition_vector"]
