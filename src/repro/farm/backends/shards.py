"""Work-stealing shard scheduler for heterogeneous job durations.

A campaign's jobs are rarely uniform: a fuzz sweep mixes multi-second
shrink jobs with near-free cache probes, and a static partition of such
a mix leaves some workers idle while one grinds through the expensive
shard.  This planner sits *between* the ordered job list and whichever
backend executes it:

- the pending jobs are split into ``shards`` contiguous chunks (chunk
  boundaries follow submission order, so related jobs stay together and
  a shard is a meaningful unit of locality);
- each worker slot has a *home shard* (``slot % shards``) it drains
  from the head, preserving submission order within the shard;
- a slot whose home runs dry *steals from the tail* of the most-loaded
  shard (ties break to the lowest shard id) -- tail-stealing takes the
  work a lagging home slot would reach last, which is the classic way
  to keep steals rare and cheap;
- requeued jobs (timeout/crash retries) go back to their home shard.

``steal=False`` models a static partition for comparison (and for the
makespan bench); the default single-shard planner is byte-for-byte the
engine's original FIFO order.

Determinism: the planner chooses only *execution order*; aggregation is
by submission slot, so stolen, static and FIFO schedules all produce
identical aggregate bytes.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Sequence

from repro.farm.job import JobOutcome


class JobPlanner:
    """Hands pending outcomes to worker slots; single shared FIFO."""

    def __init__(self, pending: Sequence[JobOutcome]) -> None:
        self._queue: Deque[JobOutcome] = deque(pending)

    @property
    def remaining(self) -> int:
        return len(self._queue)

    def take(self, slot: int) -> Optional[JobOutcome]:
        if not self._queue:
            return None
        return self._queue.popleft()

    def requeue(self, outcome: JobOutcome) -> None:
        self._queue.append(outcome)

    def stats(self) -> Dict[str, int]:
        return {"shards": 1, "steals": 0}


class ShardedPlanner(JobPlanner):
    """Contiguous shards with optional tail-stealing rebalancing."""

    def __init__(self, pending: Sequence[JobOutcome], shards: int,
                 width: int, steal: bool = True) -> None:
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        if shards > width:
            raise ValueError(
                f"shards={shards} exceeds worker width {width}: every "
                f"shard needs a home slot or its jobs would starve")
        self.steal = bool(steal)
        self.shards: List[Deque[JobOutcome]] = [deque()
                                                for _ in range(shards)]
        self._home: Dict[int, int] = {}
        self.steals = 0
        total = len(pending)
        base, extra = divmod(total, shards)
        cursor = 0
        for shard_id in range(shards):
            size = base + (1 if shard_id < extra else 0)
            for outcome in pending[cursor:cursor + size]:
                self.shards[shard_id].append(outcome)
                self._home[outcome.index] = shard_id
            cursor += size

    @property
    def remaining(self) -> int:
        return sum(len(shard) for shard in self.shards)

    def take(self, slot: int) -> Optional[JobOutcome]:
        home = self.shards[slot % len(self.shards)]
        if home:
            return home.popleft()
        if not self.steal:
            return None
        victim = max(self.shards, key=len)
        if not victim:
            return None
        self.steals += 1
        return victim.pop()

    def requeue(self, outcome: JobOutcome) -> None:
        shard_id = self._home.get(outcome.index, 0)
        self.shards[shard_id].append(outcome)

    def stats(self) -> Dict[str, int]:
        return {"shards": len(self.shards), "steals": self.steals}


def make_planner(pending: Sequence[JobOutcome], width: int,
                 shards: Optional[int], steal: bool = True) -> JobPlanner:
    """The planner for one drain: FIFO unless sharding was requested."""
    if shards is None or shards <= 1:
        return JobPlanner(pending)
    return ShardedPlanner(pending, shards, width, steal=steal)


__all__ = ["JobPlanner", "ShardedPlanner", "make_planner"]
