"""Fork ProcessPoolExecutor behind the ExecutorBackend protocol.

The original farm substrate, unchanged in mechanism: a
``ProcessPoolExecutor`` over the fork start method, one future per job,
workers re-importing job functions by name.  What moved here is the
*blame bookkeeping* that used to live inline in the engine:

- a pool break with exactly one interrupted job is an attributable
  ``crash`` (the pool is rebuilt and the campaign continues);
- a break with several jobs in flight cannot name its killer, so every
  interrupted job comes back as a ``suspect`` completion (in tag order)
  for the engine to refund and re-run in isolated width-1 pools;
- :meth:`cancel` (timeout enforcement) can only tear the whole pool
  down, so it reports every other in-flight tag as collateral.

Pool teardown never waits on hung workers: processes are terminated
outright, because a timed-out job is by definition not going to finish.
"""

from __future__ import annotations

import multiprocessing
import time
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from typing import Dict, List, Optional, Sequence

from repro.farm.backends.base import (
    STATUS_CRASH, STATUS_ERROR, STATUS_OK, STATUS_SUSPECT,
    BackendCapabilities, Completion, ExecutorBackend, execute_payload,
    require_fork,
)
from repro.farm.job import Job


class ForkPoolBackend(ExecutorBackend):
    """One campaign's worth of fork-pool execution."""

    capabilities = BackendCapabilities(kind="fork")

    def __init__(self, width: int) -> None:
        require_fork("the fork-pool backend")
        if width < 1:
            raise ValueError(f"fork backend width must be >= 1, got {width}")
        self.width = width
        self._pool: Optional[ProcessPoolExecutor] = None
        self._futures: Dict[Future, int] = {}
        self._tags: Dict[int, Future] = {}

    # ------------------------------------------------------------------
    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            context = multiprocessing.get_context("fork")
            self._pool = ProcessPoolExecutor(max_workers=self.width,
                                             mp_context=context)
        return self._pool

    def _kill_pool(self) -> None:
        """Tear the pool down without waiting on hung or dead workers."""
        pool, self._pool = self._pool, None
        self._futures.clear()
        self._tags.clear()
        if pool is None:
            return
        processes = list(getattr(pool, "_processes", {}).values())
        pool.shutdown(wait=False, cancel_futures=True)
        for process in processes:
            try:
                process.terminate()
            except (OSError, ValueError, AttributeError):
                pass

    # ------------------------------------------------------------------
    def submit(self, tag: int, job: Job) -> None:
        future = self._ensure_pool().submit(
            execute_payload, (job.ref, job.config, job.seed))
        self._futures[future] = tag
        self._tags[tag] = future

    def drain(self, timeout: Optional[float]) -> List[Completion]:
        if not self._futures:
            return []
        finished, _ = wait(set(self._futures), timeout=timeout,
                           return_when=FIRST_COMPLETED)
        completions: List[Completion] = []
        broken: List[int] = []
        for future in finished:
            tag = self._futures.pop(future)
            self._tags.pop(tag, None)
            try:
                status, payload, elapsed = future.result()
            except BrokenProcessPool:
                # Completed siblings in this same batch keep their
                # results; only the interrupted ones are collected.
                broken.append(tag)
                continue
            completions.append(Completion(
                tag, STATUS_OK if status == "ok" else STATUS_ERROR,
                payload, elapsed))
        if broken:
            survivors = sorted(self._futures.values())
            self._kill_pool()
            if len(broken) == 1 and not survivors:
                # Alone in the pool: blame is certain.
                completions.append(Completion(
                    broken[0], STATUS_CRASH, "worker process died"))
            else:
                for tag in sorted(broken + survivors):
                    completions.append(Completion(
                        tag, STATUS_SUSPECT,
                        "worker pool broke with multiple jobs in flight"))
        return completions

    def cancel(self, tags: Sequence[int]) -> List[int]:
        doomed = set(tags)
        collateral = sorted(tag for tag in self._tags if tag not in doomed)
        # Hung workers cannot be cancelled individually: replace the
        # whole pool, reporting the innocent in-flight tags for requeue.
        self._kill_pool()
        return collateral

    def teardown(self) -> None:
        self._kill_pool()


__all__ = ["ForkPoolBackend"]
