"""The ExecutorBackend protocol: what the campaign engine runs jobs on.

The engine owns *policy* -- ordered aggregation, caching, retry budget,
timeout charging, blame accounting -- and a backend owns *mechanism*:
getting a submitted job executed somewhere and reporting what happened.
The whole contract is four methods and a capability record:

- :meth:`ExecutorBackend.submit` -- start one job under an integer tag
  (the engine uses the job's submission index, so completions map back
  to their aggregation slot without any shared state);
- :meth:`ExecutorBackend.drain` -- block up to a timeout and return the
  :class:`Completion` batch that arrived;
- :meth:`ExecutorBackend.cancel` -- abort specific in-flight tags (for
  timeout enforcement) and return the *collateral* tags that were
  innocently interrupted by the abort mechanism (a fork pool can only
  kill everything; a daemon kills one worker);
- :meth:`ExecutorBackend.teardown` -- release resources; warm backends
  may keep their workers for the next campaign.

Completion statuses:

- ``ok`` / ``error`` -- the job function returned / raised; ``value``
  is the result / message;
- ``crash`` -- the worker died underneath the job and the backend is
  *certain* which job killed it (daemon workers run one job each; a
  width-1 fork pool has one suspect);
- ``suspect`` -- the execution substrate died with several jobs in
  flight and blame cannot be attributed; the engine refunds the attempt
  and re-runs each suspect in isolation.

Determinism invariant: a backend influences only *where and when* jobs
execute, never what enters the aggregate -- the engine normalizes every
result through one JSON round-trip and merges by tag order, so any
backend combination is byte-identical to the ``jobs=1`` oracle.
"""

from __future__ import annotations

import multiprocessing
import time
import traceback
from dataclasses import dataclass
from typing import Any, List, Optional, Sequence, Tuple

from repro.core.serde import canonical_json
from repro.farm.job import Job, resolve_ref

STATUS_OK = "ok"
STATUS_ERROR = "error"
STATUS_CRASH = "crash"
STATUS_SUSPECT = "suspect"


def fork_available() -> bool:
    """True when this platform can start worker processes by fork."""
    return "fork" in multiprocessing.get_all_start_methods()


def require_fork(what: str) -> None:
    """Reject spawn-only platforms up front with an actionable error.

    Both process backends rely on fork semantics (workers inherit the
    parent's imported modules, so job functions defined in scripts and
    test files resolve by name).  On a spawn-only platform that used to
    surface as a pickle failure halfway into a sweep; now it is an
    immediate, explicit error.
    """
    if not fork_available():
        raise RuntimeError(
            f"{what} requires the 'fork' process start method, which this "
            f"platform does not support (available: "
            f"{multiprocessing.get_all_start_methods()}). Use jobs=1 / "
            f"backend='inline' for the in-process reference path.")


def execute_payload(payload: Tuple[str, Any, int]) -> Tuple[str, Any, float]:
    """Worker-side entry: resolve the function by name and run it.

    Returns ``("ok", result, elapsed)`` or ``("error", message, elapsed)``;
    never raises, so the only way an execution is lost is the worker
    dying.  Shared verbatim by the fork-pool and daemon backends so an
    error message is identical no matter where the job ran.
    """
    ref, config, seed = payload
    start = time.perf_counter()
    try:
        fn = resolve_ref(ref)
        result = fn(config, seed)
        canonical_json(result)  # non-JSON results must fail here, loudly
        return ("ok", result, time.perf_counter() - start)
    except BaseException as error:  # noqa: BLE001 -- structured, not lost
        tail = traceback.format_exc(limit=3).strip().splitlines()[-1]
        message = f"{type(error).__name__}: {error}"
        if tail and tail not in message:
            message = f"{message} [{tail}]"
        return ("error", message, time.perf_counter() - start)


@dataclass(frozen=True)
class BackendCapabilities:
    """What the engine may rely on for a given backend.

    - ``timeout_kill`` -- a timed-out job can be killed without
      interrupting its siblings (``cancel`` has no collateral);
    - ``warm_state`` -- worker processes outlive the campaign, so
      per-process state (decode caches, JIT superblocks, module memos)
      amortizes across campaigns;
    - ``attributable_crash`` -- a worker death always maps to exactly
      one job (no ``suspect`` completions ever);
    - ``in_process`` -- jobs run in the calling process: closures are
      allowed, crashes are impossible, timeouts are unenforceable.
    """

    kind: str
    timeout_kill: bool = False
    warm_state: bool = False
    attributable_crash: bool = False
    in_process: bool = False


@dataclass
class Completion:
    """One finished (or lost) execution, reported by a backend."""

    tag: int
    status: str           # STATUS_OK | STATUS_ERROR | STATUS_CRASH | STATUS_SUSPECT
    value: Any = None     # result for ok, message for error/crash/suspect
    elapsed: float = 0.0


class ExecutorBackend:
    """Abstract execution substrate; see the module docstring for the
    full contract."""

    capabilities: BackendCapabilities
    width: int

    def submit(self, tag: int, job: Job) -> None:
        raise NotImplementedError

    def drain(self, timeout: Optional[float]) -> List[Completion]:
        raise NotImplementedError

    def cancel(self, tags: Sequence[int]) -> List[int]:
        """Abort the given in-flight tags; returns collateral tags that
        were interrupted alongside them (to be refunded and requeued by
        the engine)."""
        raise NotImplementedError

    def teardown(self) -> None:
        raise NotImplementedError

    def __enter__(self) -> "ExecutorBackend":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.teardown()


class InlineBackend(ExecutorBackend):
    """The in-process reference oracle (``jobs=1``).

    Executes each submission synchronously inside :meth:`drain`, calling
    the job's function object directly -- no pickling, no import by
    name, closures allowed.  Every other backend is measured against
    this one's aggregate bytes.
    """

    capabilities = BackendCapabilities(kind="inline", in_process=True,
                                       attributable_crash=True)

    def __init__(self, width: int = 1) -> None:
        self.width = 1
        self._pending: List[Tuple[int, Job]] = []

    def submit(self, tag: int, job: Job) -> None:
        self._pending.append((tag, job))

    def drain(self, timeout: Optional[float]) -> List[Completion]:
        if not self._pending:
            return []
        tag, job = self._pending.pop(0)
        start = time.perf_counter()
        try:
            result = job.fn(job.config, job.seed)
            canonical_json(result)
        except BaseException as error:  # noqa: BLE001
            return [Completion(tag, STATUS_ERROR,
                               f"{type(error).__name__}: {error}",
                               time.perf_counter() - start)]
        return [Completion(tag, STATUS_OK, result,
                           time.perf_counter() - start)]

    def cancel(self, tags: Sequence[int]) -> List[int]:
        return []

    def teardown(self) -> None:
        self._pending.clear()


__all__ = [
    "BackendCapabilities", "Completion", "ExecutorBackend",
    "InlineBackend", "STATUS_CRASH", "STATUS_ERROR", "STATUS_OK",
    "STATUS_SUSPECT", "execute_payload", "fork_available", "require_fork",
]
