"""Persistent worker daemons behind the ExecutorBackend protocol.

A fork pool pays its startup tax every campaign: new interpreters
(well, forked images), cold decode caches, cold superblock JITs, cold
module-level memos.  This backend keeps a module-global pool of
long-lived worker processes connected over ``socketpair`` pipes, so the
*same* worker processes serve campaign after campaign and everything a
job function caches at module level (assembled programs, decode caches,
JIT'd superblocks) stays warm.

Wire protocol -- length-prefixed canonical-JSON frames (``">I"`` byte
count, then UTF-8 JSON)::

    parent -> worker   {"op": "job", "tag": n, "ref": .., "config": .., "seed": ..}
    worker -> parent   {"op": "done", "tag": n, "status": "ok"|"error",
                        "value": .., "elapsed": ..}
    parent -> worker   {"op": "ping", "n": k}     worker -> {"op": "pong", "n": k}
    parent -> worker   {"op": "exit"}

Everything on the wire is JSON the job contract already guarantees
(configs and results are canonical-JSON-validated at submission), so
there is no pickling anywhere in this backend.

Liveness: each worker runs exactly one job at a time, so a dead socket
*is* an attributable crash -- the backend reports ``crash`` for the tag
the worker carried, replaces the worker, and the engine's existing
JobFailure/refund machinery does the rest.  Idle workers are
heartbeat-pinged on acquisition and silently replaced if dead.
"""

from __future__ import annotations

import atexit
import json
import multiprocessing
import os
import select
import socket
import struct
from typing import Any, Dict, List, Optional, Sequence

from repro.core.serde import canonical_json
from repro.farm.backends.base import (
    STATUS_CRASH, STATUS_ERROR, STATUS_OK,
    BackendCapabilities, Completion, ExecutorBackend, execute_payload,
    require_fork,
)
from repro.farm.job import Job

_HEADER = struct.Struct(">I")
_MAX_FRAME = 256 * 1024 * 1024
_PING_TIMEOUT = 5.0


def _send_frame(sock: socket.socket, payload: Dict[str, Any]) -> None:
    data = canonical_json(payload).encode("utf-8")
    if len(data) > _MAX_FRAME:
        raise ValueError(f"frame of {len(data)} bytes exceeds wire limit")
    sock.sendall(_HEADER.pack(len(data)) + data)


def _recv_exact(sock: socket.socket, count: int) -> Optional[bytes]:
    chunks: List[bytes] = []
    remaining = count
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            return None
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def _recv_frame(sock: socket.socket) -> Optional[Dict[str, Any]]:
    header = _recv_exact(sock, _HEADER.size)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length > _MAX_FRAME:
        return None
    body = _recv_exact(sock, length)
    if body is None:
        return None
    try:
        payload = json.loads(body.decode("utf-8"))
    except ValueError:
        return None
    return payload if isinstance(payload, dict) else None


def _worker_main(sock: socket.socket) -> None:
    """Daemon worker loop: serve job/ping frames until exit or EOF."""
    while True:
        try:
            frame = _recv_frame(sock)
        except OSError:
            break
        if frame is None or frame.get("op") == "exit":
            break
        op = frame.get("op")
        try:
            if op == "ping":
                _send_frame(sock, {"op": "pong", "n": frame.get("n")})
            elif op == "job":
                status, value, elapsed = execute_payload(
                    (frame["ref"], frame["config"], frame["seed"]))
                _send_frame(sock, {"op": "done", "tag": frame["tag"],
                                   "status": status, "value": value,
                                   "elapsed": elapsed})
        except OSError:
            break
    try:
        sock.close()
    except OSError:
        pass


class DaemonWorker:
    """One long-lived worker process plus its parent-side socket."""

    def __init__(self) -> None:
        require_fork("the daemon backend")
        parent_sock, child_sock = socket.socketpair()
        context = multiprocessing.get_context("fork")
        self.process = context.Process(target=_worker_main,
                                       args=(child_sock,), daemon=True)
        self.process.start()
        child_sock.close()
        self.sock = parent_sock
        self.tag: Optional[int] = None   # in-flight tag, None when idle
        self._pings = 0

    @property
    def pid(self) -> Optional[int]:
        return self.process.pid

    def send(self, payload: Dict[str, Any]) -> None:
        _send_frame(self.sock, payload)

    def ping(self, timeout: float = _PING_TIMEOUT) -> bool:
        """Heartbeat: round-trip a ping; False means the worker is dead
        or wedged and must be replaced."""
        self._pings += 1
        token = self._pings
        try:
            self.send({"op": "ping", "n": token})
            while True:
                readable, _, _ = select.select([self.sock], [], [], timeout)
                if not readable:
                    return False
                frame = _recv_frame(self.sock)
                if frame is None:
                    return False
                if frame.get("op") == "pong" and frame.get("n") == token:
                    return True
                # Anything else on the wire here is protocol desync
                # (e.g. a stale done frame after a kill): replace.
                return False
        except OSError:
            return False

    def kill(self) -> None:
        try:
            self.sock.close()
        except OSError:
            pass
        try:
            self.process.kill()
        except (OSError, ValueError, AttributeError):
            pass
        try:
            self.process.join(timeout=1.0)
        except (OSError, ValueError, AssertionError):
            pass

    def shutdown(self) -> None:
        """Polite exit: send the exit frame, then make sure."""
        try:
            self.send({"op": "exit"})
        except OSError:
            pass
        try:
            self.process.join(timeout=1.0)
        except (OSError, ValueError, AssertionError):
            pass
        self.kill()


# ---------------------------------------------------------------------------
# the persistent pool (module-global: this is what makes workers warm
# across campaigns in one driving process)
# ---------------------------------------------------------------------------

_IDLE: List[DaemonWorker] = []
_SHUTDOWN_REGISTERED = False


def _register_shutdown() -> None:
    global _SHUTDOWN_REGISTERED
    if not _SHUTDOWN_REGISTERED:
        atexit.register(shutdown_daemons)
        _SHUTDOWN_REGISTERED = True


def acquire_workers(count: int) -> List[DaemonWorker]:
    """Check ``count`` live workers out of the persistent pool, pinging
    idle ones and replacing any that died while parked."""
    _register_shutdown()
    workers: List[DaemonWorker] = []
    while _IDLE and len(workers) < count:
        worker = _IDLE.pop(0)
        if worker.process.is_alive() and worker.ping():
            workers.append(worker)
        else:
            worker.kill()
    while len(workers) < count:
        workers.append(DaemonWorker())
    return workers


def release_workers(workers: Sequence[DaemonWorker]) -> None:
    """Return workers to the pool warm; anything still carrying a job
    is wedged and is killed instead."""
    for worker in workers:
        if worker.tag is None and worker.process.is_alive():
            _IDLE.append(worker)
        else:
            worker.kill()


def shutdown_daemons() -> None:
    """Stop every parked daemon worker (atexit, and tests)."""
    while _IDLE:
        _IDLE.pop().shutdown()


def warm_worker_pids(count: int) -> List[int]:
    """Pids of ``count`` pool workers (spawning as needed) -- used by
    tests and benches to prove warm reuse without running a campaign."""
    workers = acquire_workers(count)
    pids = [worker.pid for worker in workers]
    release_workers(workers)
    return [pid for pid in pids if pid is not None]


# ---------------------------------------------------------------------------
# the backend
# ---------------------------------------------------------------------------

class DaemonBackend(ExecutorBackend):
    """Campaign-facing view over ``width`` persistent workers."""

    capabilities = BackendCapabilities(kind="daemon", timeout_kill=True,
                                       warm_state=True,
                                       attributable_crash=True)

    def __init__(self, width: int) -> None:
        require_fork("the daemon backend")
        if width < 1:
            raise ValueError(f"daemon backend width must be >= 1, "
                             f"got {width}")
        self.width = width
        self._workers = acquire_workers(width)
        self._free: List[DaemonWorker] = list(self._workers)
        self._busy: Dict[int, DaemonWorker] = {}
        self._buffered: List[Completion] = []

    # ------------------------------------------------------------------
    def _replace(self, worker: DaemonWorker) -> DaemonWorker:
        worker.kill()
        fresh = DaemonWorker()
        self._workers = [fresh if w is worker else w for w in self._workers]
        return fresh

    def submit(self, tag: int, job: Job) -> None:
        if not self._free:
            raise RuntimeError("daemon backend over-subscribed: no free "
                               "worker (submit beyond width?)")
        worker = self._free.pop(0)
        frame = {"op": "job", "tag": tag, "ref": job.ref,
                 "config": job.config, "seed": job.seed}
        try:
            worker.send(frame)
        except OSError:
            # The parked worker died between heartbeat and use: replace
            # it and retry once on the fresh process.
            worker = self._replace(worker)
            try:
                worker.send(frame)
            except OSError:
                worker = self._replace(worker)
                self._free.append(worker)
                self._buffered.append(Completion(
                    tag, STATUS_CRASH, "daemon worker unreachable"))
                return
        worker.tag = tag
        self._busy[tag] = worker

    def drain(self, timeout: Optional[float]) -> List[Completion]:
        if self._buffered:
            completions, self._buffered = self._buffered, []
            return completions
        if not self._busy:
            return []
        socks = {worker.sock: worker for worker in self._busy.values()}
        readable, _, _ = select.select(list(socks), [], [], timeout)
        completions: List[Completion] = []
        for sock in readable:
            worker = socks[sock]
            tag = worker.tag
            try:
                frame = _recv_frame(sock)
            except OSError:
                frame = None
            if frame is None or frame.get("op") != "done" \
                    or frame.get("tag") != tag:
                # EOF or protocol desync: the worker died under its job.
                # One worker == one job, so blame is certain; restart.
                if tag is not None:
                    self._busy.pop(tag, None)
                    completions.append(Completion(
                        tag, STATUS_CRASH, "daemon worker died"))
                fresh = self._replace(worker)
                self._free.append(fresh)
                continue
            self._busy.pop(tag, None)
            worker.tag = None
            self._free.append(worker)
            status = STATUS_OK if frame.get("status") == "ok" \
                else STATUS_ERROR
            completions.append(Completion(
                tag, status, frame.get("value"),
                float(frame.get("elapsed") or 0.0)))
        return completions

    def cancel(self, tags: Sequence[int]) -> List[int]:
        # Daemon workers run one job each, so a timed-out job is killed
        # with surgical precision: no siblings are interrupted, hence no
        # collateral to refund.
        for tag in tags:
            worker = self._busy.pop(tag, None)
            if worker is None:
                continue
            fresh = self._replace(worker)
            self._free.append(fresh)
        return []

    def teardown(self) -> None:
        # Busy workers at teardown are wedged (the engine only tears
        # down after draining); release_workers kills them and parks the
        # idle ones warm for the next campaign.
        self._buffered.clear()
        self._busy.clear()
        release_workers(self._workers)
        self._workers = []
        self._free = []


__all__ = [
    "DaemonBackend", "DaemonWorker", "acquire_workers", "release_workers",
    "shutdown_daemons", "warm_worker_pids",
]
