"""Pluggable execution backends for the campaign engine.

Public surface:

- :class:`~repro.farm.backends.base.ExecutorBackend` -- the protocol
  (``submit`` / ``drain`` / ``cancel`` / ``teardown`` + capabilities);
- :func:`make_backend` -- name -> backend factory used by
  :class:`repro.farm.Executor` (``"inline"``, ``"fork"``, ``"daemon"``);
- :func:`~repro.farm.backends.shards.make_planner` -- the optional
  work-stealing shard scheduler layered on any backend.
"""

from __future__ import annotations

from repro.farm.backends.base import (
    BackendCapabilities, Completion, ExecutorBackend, InlineBackend,
    STATUS_CRASH, STATUS_ERROR, STATUS_OK, STATUS_SUSPECT,
    execute_payload, fork_available, require_fork,
)
from repro.farm.backends.daemon import DaemonBackend, shutdown_daemons, \
    warm_worker_pids
from repro.farm.backends.fork import ForkPoolBackend
from repro.farm.backends.shards import JobPlanner, ShardedPlanner, \
    make_planner

BACKENDS = {
    "inline": InlineBackend,
    "fork": ForkPoolBackend,
    "daemon": DaemonBackend,
}


def make_backend(kind: str, width: int) -> ExecutorBackend:
    """Build a backend by name; process backends reject spawn-only
    platforms here, before any job is dispatched."""
    try:
        factory = BACKENDS[kind]
    except KeyError:
        raise ValueError(f"unknown executor backend {kind!r} "
                         f"(expected one of {sorted(BACKENDS)})") from None
    return factory(width)


__all__ = [
    "BACKENDS", "BackendCapabilities", "Completion", "DaemonBackend",
    "ExecutorBackend", "ForkPoolBackend", "InlineBackend", "JobPlanner",
    "STATUS_CRASH", "STATUS_ERROR", "STATUS_OK", "STATUS_SUSPECT",
    "ShardedPlanner", "execute_payload", "fork_available", "make_backend",
    "make_planner", "require_fork", "shutdown_daemons", "warm_worker_pids",
]
