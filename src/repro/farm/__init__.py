"""repro.farm -- deterministic parallel campaign engine.

Shards batches of named pure functions (``fn(config, seed) -> result``)
across worker processes with content-addressed result caching, per-job
timeout/retry/crash containment, and ordered byte-identical aggregation:
a parallel campaign's aggregate equals the serial one bit-for-bit.

    from repro.farm import Campaign, Executor

    campaign = Campaign("sweep", executor=Executor(jobs=4,
                                                   cache_dir=".farm"))
    for seed in range(16):
        campaign.add(evaluate_point, config={"p": 0.1}, seed=seed)
    result = campaign.run().raise_on_failure()
    print(result.aggregate_json())
"""

from repro.farm.cache import ResultCache
from repro.farm.engine import Campaign, CampaignResult, Executor, run_campaign
from repro.farm.job import (
    FAILURE_CRASH, FAILURE_ERROR, FAILURE_TIMEOUT, Job, JobFailure,
    JobOutcome, canonical_json, func_ref, job_key, json_roundtrip,
    resolve_ref, source_salt,
)

__all__ = [
    "Campaign", "CampaignResult", "Executor", "run_campaign",
    "ResultCache", "Job", "JobFailure", "JobOutcome",
    "FAILURE_CRASH", "FAILURE_ERROR", "FAILURE_TIMEOUT",
    "canonical_json", "func_ref", "job_key", "json_roundtrip",
    "resolve_ref", "source_salt",
]
