"""repro.farm -- deterministic parallel campaign engine.

Shards batches of named pure functions (``fn(config, seed) -> result``)
across pluggable execution backends -- the in-process oracle, fork
pools, persistent worker daemons -- with tiered content-addressed
result caching, per-job timeout/retry/crash containment, optional
work-stealing shard scheduling, and ordered byte-identical aggregation:
every backend combination's aggregate equals the serial one
bit-for-bit.

    from repro.farm import Campaign

    campaign = Campaign.build("sweep", jobs=4, backend="daemon",
                              cache=".farm")
    for seed in range(16):
        campaign.add(evaluate_point, config={"p": 0.1}, seed=seed)
    result = campaign.run().raise_on_failure()
    print(result.aggregate_json())
"""

from repro.farm.backends import (
    BackendCapabilities, Completion, DaemonBackend, ExecutorBackend,
    ForkPoolBackend, InlineBackend, fork_available, make_backend,
    require_fork, shutdown_daemons,
)
from repro.farm.cache import (
    CacheTier, ResultCache, SharedDirectoryCache, TieredCache,
    as_cache_tier,
)
from repro.farm.engine import (
    Campaign, CampaignResult, Executor, resolve_executor, run_campaign,
)
from repro.farm.job import (
    FAILURE_CRASH, FAILURE_ERROR, FAILURE_TIMEOUT, Job, JobFailure,
    JobOutcome, canonical_json, func_ref, job_key, json_roundtrip,
    resolve_ref, source_salt,
)

__all__ = [
    "BackendCapabilities", "Campaign", "CampaignResult", "CacheTier",
    "Completion", "DaemonBackend", "Executor", "ExecutorBackend",
    "FAILURE_CRASH", "FAILURE_ERROR", "FAILURE_TIMEOUT",
    "ForkPoolBackend", "InlineBackend", "Job", "JobFailure", "JobOutcome",
    "ResultCache", "SharedDirectoryCache", "TieredCache", "as_cache_tier",
    "canonical_json", "fork_available", "func_ref", "job_key",
    "json_roundtrip", "make_backend", "require_fork", "resolve_executor",
    "resolve_ref", "run_campaign", "shutdown_daemons", "source_salt",
]
