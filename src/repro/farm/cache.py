"""Content-addressed on-disk result cache.

One file per completed job, named by the job's content address
(:func:`repro.farm.job.job_key`), stored as canonical JSON under a
two-character fan-out directory::

    <root>/ab/abcdef....json

A hit returns the cached result without executing anything -- that is
how re-runs and resumed sweeps skip completed points.  Because the key
hashes (function ref, config, seed, code-version salt), a cache can be
shared between serial and parallel campaigns, across processes and
across machines, and can never serve a stale result for edited code.

Writes are atomic (temp file + ``os.replace``) so concurrent workers
racing on the same key simply last-write-wins identical bytes; corrupt
or truncated entries read as misses, never as errors.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from typing import Any, Dict, Iterator, Optional, Tuple

from repro.farm.job import canonical_json

_MISS = object()


class ResultCache:
    """Directory-backed map from job key to cached result payload."""

    def __init__(self, root: str) -> None:
        self.root = str(root)
        os.makedirs(self.root, exist_ok=True)

    # ------------------------------------------------------------------
    def _path(self, key: str) -> str:
        if len(key) < 3 or not all(c in "0123456789abcdef" for c in key):
            raise ValueError(f"malformed cache key {key!r}")
        return os.path.join(self.root, key[:2], f"{key}.json")

    def lookup(self, key: str) -> Tuple[bool, Any]:
        """``(hit, result)``; unreadable entries are misses (malformed
        keys still raise -- only on-disk damage is forgiven)."""
        path = self._path(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            return False, None
        if not isinstance(payload, dict) or "result" not in payload:
            return False, None
        return True, payload["result"]

    def store(self, key: str, result: Any,
              meta: Optional[Dict[str, Any]] = None) -> str:
        """Atomically persist ``result`` (plus job metadata for humans
        spelunking the cache directory); returns the entry path."""
        path = self._path(key)
        payload = {"key": key, "result": result}
        if meta:
            payload["job"] = meta
        return self._atomic_write(path, payload)

    def _atomic_write(self, path: str, payload: Dict[str, Any]) -> str:
        os.makedirs(os.path.dirname(path), exist_ok=True)
        data = canonical_json(payload)
        fd, tmp_path = tempfile.mkstemp(dir=os.path.dirname(path),
                                        suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(data)
            os.replace(tmp_path, path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise
        return path

    # ------------------------------------------------------------------
    # campaign manifests (crash-resumable sweeps)
    # ------------------------------------------------------------------
    def _manifest_path(self, name: str) -> str:
        digest = hashlib.sha256(name.encode("utf-8")).hexdigest()
        return os.path.join(self.root, "manifests", f"{digest}.json")

    def store_manifest(self, name: str, payload: Dict[str, Any]) -> str:
        """Atomically persist a campaign manifest under ``name``.

        The manifest is what makes a campaign *resumable*: it records
        the full job list (ref/config/seed/name) plus the executor salt,
        so :meth:`repro.farm.Campaign.resume` can rebuild the identical
        key set after a crash and let cache hits skip completed shards.
        """
        return self._atomic_write(self._manifest_path(name),
                                  {"name": name, **payload})

    def load_manifest(self, name: str) -> Dict[str, Any]:
        """Load the manifest stored under ``name``; KeyError if absent
        or damaged (a manifest is all-or-nothing, unlike results)."""
        try:
            with open(self._manifest_path(name), "r",
                      encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            raise KeyError(f"no campaign manifest named {name!r} "
                           f"under {self.root}")
        if not isinstance(payload, dict) or payload.get("name") != name:
            raise KeyError(f"damaged campaign manifest {name!r} "
                           f"under {self.root}")
        return payload

    def manifests(self) -> Iterator[str]:
        """Names of every stored campaign manifest."""
        subdir = os.path.join(self.root, "manifests")
        try:
            entries = sorted(os.listdir(subdir))
        except OSError:
            return
        for entry in entries:
            if not entry.endswith(".json"):
                continue
            try:
                with open(os.path.join(subdir, entry), "r",
                          encoding="utf-8") as handle:
                    payload = json.load(handle)
            except (OSError, ValueError):
                continue
            if isinstance(payload, dict) and "name" in payload:
                yield payload["name"]

    # ------------------------------------------------------------------
    def keys(self) -> Iterator[str]:
        for fanout in sorted(os.listdir(self.root)):
            subdir = os.path.join(self.root, fanout)
            # Result fan-out dirs are exactly two hex chars; skips the
            # `manifests/` directory (campaign manifests, not results).
            if len(fanout) != 2 or not os.path.isdir(subdir):
                continue
            for entry in sorted(os.listdir(subdir)):
                if entry.endswith(".json"):
                    yield entry[:-len(".json")]

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    def __contains__(self, key: str) -> bool:
        return self.lookup(key)[0]

    def __repr__(self) -> str:
        return f"ResultCache({self.root!r}, {len(self)} entries)"


__all__ = ["ResultCache"]
