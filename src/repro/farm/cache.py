"""Content-addressed result cache, layered into composable tiers.

One file per completed job, named by the job's content address
(:func:`repro.farm.job.job_key`), stored as canonical JSON under a
two-character fan-out directory::

    <root>/ab/abcdef....json

A hit returns the cached result without executing anything -- that is
how re-runs and resumed sweeps skip completed points.  Because the key
hashes (function ref, config, seed, code-version salt), a cache can be
shared between serial and parallel campaigns, across processes and
across machines, and can never serve a stale result for edited code.

The :class:`CacheTier` interface makes that location-independence
explicit.  Three concrete tiers ship:

- :class:`ResultCache` -- the local-disk tier (the original cache,
  unchanged on disk);
- :class:`SharedDirectoryCache` -- the same layout on a shared /
  network-mounted directory; lookups behave identically, but stores are
  *best-effort* (a flaky mount degrades to a miss-only tier instead of
  failing the campaign);
- :class:`TieredCache` -- a read-through / write-back stack: lookups
  try tiers in order and promote remote hits into the earlier (faster)
  tiers; stores write through every writable tier.

Every tier preserves the two load-bearing invariants: writes are atomic
(temp file + ``os.replace``), so concurrent workers racing on the same
key simply last-write-wins identical bytes; corrupt or truncated
entries read as misses, never as errors.

:func:`as_cache_tier` is the uniform coercion every campaign surface
accepts: ``None``, a directory path, a ready tier, or a list of either
(composed into a :class:`TieredCache`).
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.core.serde import canonical_json


class CacheTier:
    """What the campaign engine needs from a cache.

    Contract, identical at every tier:

    - ``lookup(key) -> (hit, result)`` -- corrupt or unreadable entries
      are misses, never errors; malformed *keys* still raise.
    - ``store(key, result, meta)`` -- atomic and idempotent; storing the
      same key twice writes identical bytes.
    - manifests -- named, all-or-nothing campaign records
      (:meth:`store_manifest` / :meth:`load_manifest` /
      :meth:`manifests`) that make sweeps crash-resumable.
    """

    read_only: bool = False

    def lookup(self, key: str) -> Tuple[bool, Any]:
        raise NotImplementedError

    def store(self, key: str, result: Any,
              meta: Optional[Dict[str, Any]] = None) -> Optional[str]:
        raise NotImplementedError

    def store_manifest(self, name: str,
                       payload: Dict[str, Any]) -> Optional[str]:
        raise NotImplementedError

    def load_manifest(self, name: str) -> Dict[str, Any]:
        raise NotImplementedError

    def manifests(self) -> Iterator[str]:
        raise NotImplementedError

    def keys(self) -> Iterator[str]:
        raise NotImplementedError

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    def __contains__(self, key: str) -> bool:
        return self.lookup(key)[0]


class ResultCache(CacheTier):
    """Directory-backed map from job key to cached result payload."""

    def __init__(self, root: str, read_only: bool = False) -> None:
        self.root = str(root)
        self.read_only = bool(read_only)
        if not self.read_only:
            os.makedirs(self.root, exist_ok=True)

    # ------------------------------------------------------------------
    def _path(self, key: str) -> str:
        if len(key) < 3 or not all(c in "0123456789abcdef" for c in key):
            raise ValueError(f"malformed cache key {key!r}")
        return os.path.join(self.root, key[:2], f"{key}.json")

    def lookup(self, key: str) -> Tuple[bool, Any]:
        """``(hit, result)``; unreadable entries are misses (malformed
        keys still raise -- only on-disk damage is forgiven)."""
        path = self._path(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            return False, None
        if not isinstance(payload, dict) or "result" not in payload:
            return False, None
        return True, payload["result"]

    def store(self, key: str, result: Any,
              meta: Optional[Dict[str, Any]] = None) -> Optional[str]:
        """Atomically persist ``result`` (plus job metadata for humans
        spelunking the cache directory); returns the entry path."""
        if self.read_only:
            return None
        path = self._path(key)
        payload = {"key": key, "result": result}
        if meta:
            payload["job"] = meta
        return self._atomic_write(path, payload)

    def _atomic_write(self, path: str, payload: Dict[str, Any]) -> str:
        os.makedirs(os.path.dirname(path), exist_ok=True)
        data = canonical_json(payload)
        fd, tmp_path = tempfile.mkstemp(dir=os.path.dirname(path),
                                        suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(data)
            os.replace(tmp_path, path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise
        return path

    # ------------------------------------------------------------------
    # campaign manifests (crash-resumable sweeps)
    # ------------------------------------------------------------------
    def _manifest_path(self, name: str) -> str:
        digest = hashlib.sha256(name.encode("utf-8")).hexdigest()
        return os.path.join(self.root, "manifests", f"{digest}.json")

    def store_manifest(self, name: str,
                       payload: Dict[str, Any]) -> Optional[str]:
        """Atomically persist a campaign manifest under ``name``.

        The manifest is what makes a campaign *resumable*: it records
        the full job list (ref/config/seed/name) plus the executor salt,
        so :meth:`repro.farm.Campaign.resume` can rebuild the identical
        key set after a crash and let cache hits skip completed shards.
        """
        if self.read_only:
            return None
        return self._atomic_write(self._manifest_path(name),
                                  {"name": name, **payload})

    def load_manifest(self, name: str) -> Dict[str, Any]:
        """Load the manifest stored under ``name``; KeyError if absent
        or damaged (a manifest is all-or-nothing, unlike results)."""
        try:
            with open(self._manifest_path(name), "r",
                      encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            raise KeyError(f"no campaign manifest named {name!r} "
                           f"under {self.root}")
        if not isinstance(payload, dict) or payload.get("name") != name:
            raise KeyError(f"damaged campaign manifest {name!r} "
                           f"under {self.root}")
        return payload

    def manifests(self) -> Iterator[str]:
        """Names of every stored campaign manifest."""
        subdir = os.path.join(self.root, "manifests")
        try:
            entries = sorted(os.listdir(subdir))
        except OSError:
            return
        for entry in entries:
            if not entry.endswith(".json"):
                continue
            try:
                with open(os.path.join(subdir, entry), "r",
                          encoding="utf-8") as handle:
                    payload = json.load(handle)
            except (OSError, ValueError):
                continue
            if isinstance(payload, dict) and "name" in payload:
                yield payload["name"]

    # ------------------------------------------------------------------
    def keys(self) -> Iterator[str]:
        try:
            fanouts = sorted(os.listdir(self.root))
        except OSError:
            return
        for fanout in fanouts:
            subdir = os.path.join(self.root, fanout)
            # Result fan-out dirs are exactly two hex chars; skips the
            # `manifests/` directory (campaign manifests, not results).
            if len(fanout) != 2 or not os.path.isdir(subdir):
                continue
            for entry in sorted(os.listdir(subdir)):
                if entry.endswith(".json"):
                    yield entry[:-len(".json")]

    def __repr__(self) -> str:
        return f"ResultCache({self.root!r}, {len(self)} entries)"


class SharedDirectoryCache(ResultCache):
    """The remote tier: the same layout on a shared directory.

    The sha256 content addressing already makes entries
    location-independent, so "remote" is just a directory every host can
    mount.  Lookups are identical to the local tier (corrupt entries are
    misses).  Stores differ in one way: they are *best-effort* -- an
    unwritable or flaky mount downgrades this tier to read-only for the
    failing call instead of killing the campaign, because losing a
    write-back only costs a future cache miss, never correctness.
    """

    def __init__(self, root: str, read_only: bool = False) -> None:
        self.root = str(root)
        self.read_only = bool(read_only)
        if not self.read_only:
            try:
                os.makedirs(self.root, exist_ok=True)
            except OSError:
                self.read_only = True

    def store(self, key: str, result: Any,
              meta: Optional[Dict[str, Any]] = None) -> Optional[str]:
        try:
            return super().store(key, result, meta)
        except OSError:
            return None

    def store_manifest(self, name: str,
                       payload: Dict[str, Any]) -> Optional[str]:
        try:
            return super().store_manifest(name, payload)
        except OSError:
            return None

    def __repr__(self) -> str:
        return f"SharedDirectoryCache({self.root!r})"


class TieredCache(CacheTier):
    """Read-through / write-back stack of :class:`CacheTier` objects.

    ``lookup`` tries tiers in order; a hit in a later (slower) tier is
    written back into every earlier tier so the next lookup is local.
    ``store`` writes through every writable tier.  Manifests store to
    all tiers and load from the first tier that has an intact copy, so
    a campaign can resume on a host that only shares the remote tier.
    """

    def __init__(self, tiers: Sequence[CacheTier]) -> None:
        flat: List[CacheTier] = []
        for tier in tiers:
            if isinstance(tier, TieredCache):
                flat.extend(tier.tiers)
            else:
                flat.append(tier)
        if not flat:
            raise ValueError("TieredCache needs at least one tier")
        self.tiers: List[CacheTier] = flat

    @property
    def read_only(self) -> bool:  # type: ignore[override]
        return all(tier.read_only for tier in self.tiers)

    def lookup(self, key: str) -> Tuple[bool, Any]:
        for position, tier in enumerate(self.tiers):
            hit, result = tier.lookup(key)
            if hit:
                # Promote the hit into the faster tiers it missed in.
                for earlier in self.tiers[:position]:
                    earlier.store(key, result)
                return True, result
        return False, None

    def store(self, key: str, result: Any,
              meta: Optional[Dict[str, Any]] = None) -> Optional[str]:
        path = None
        for tier in self.tiers:
            written = tier.store(key, result, meta)
            if path is None:
                path = written
        return path

    def store_manifest(self, name: str,
                       payload: Dict[str, Any]) -> Optional[str]:
        path = None
        for tier in self.tiers:
            written = tier.store_manifest(name, payload)
            if path is None:
                path = written
        return path

    def load_manifest(self, name: str) -> Dict[str, Any]:
        for tier in self.tiers:
            try:
                return tier.load_manifest(name)
            except KeyError:
                continue
        raise KeyError(f"no campaign manifest named {name!r} "
                       f"in any of {len(self.tiers)} cache tiers")

    def manifests(self) -> Iterator[str]:
        seen = set()
        for tier in self.tiers:
            for name in tier.manifests():
                if name not in seen:
                    seen.add(name)
                    yield name

    def keys(self) -> Iterator[str]:
        seen = set()
        for tier in self.tiers:
            for key in tier.keys():
                if key not in seen:
                    seen.add(key)
                    yield key

    def __repr__(self) -> str:
        return f"TieredCache({self.tiers!r})"


CacheLike = Union[None, str, os.PathLike, CacheTier,
                  Sequence[Union[str, os.PathLike, CacheTier]]]


def as_cache_tier(cache: CacheLike) -> Optional[CacheTier]:
    """Coerce every accepted ``cache=`` spelling to a tier (or None).

    ``None`` stays None (no caching); a path becomes a local
    :class:`ResultCache`; a ready :class:`CacheTier` passes through; a
    list/tuple composes into a :class:`TieredCache` in the given order
    (first = fastest/local, last = remote).
    """
    if cache is None:
        return None
    if isinstance(cache, CacheTier):
        return cache
    if isinstance(cache, (str, os.PathLike)):
        return ResultCache(os.fspath(cache))
    if isinstance(cache, (list, tuple)):
        tiers = [as_cache_tier(item) for item in cache]
        missing = [i for i, tier in enumerate(tiers) if tier is None]
        if missing:
            raise TypeError(f"cache tier list contains None at "
                            f"position(s) {missing}")
        return TieredCache(tiers)  # type: ignore[arg-type]
    raise TypeError(f"cannot interpret {cache!r} as a cache tier "
                    f"(expected None, path, CacheTier, or list of them)")


__all__ = ["CacheTier", "ResultCache", "SharedDirectoryCache",
           "TieredCache", "as_cache_tier"]
