"""The campaign engine: deterministic multi-process job execution.

A :class:`Campaign` shards its jobs across a ``ProcessPoolExecutor``
(``jobs=1`` is the in-process reference path -- no pool, no pickling,
same cache, same aggregation) and guarantees:

- **ordered aggregation** -- outcomes are merged in job-submission
  order, so a parallel campaign's aggregate is byte-identical to the
  serial one no matter which worker finished first;
- **content-addressed caching** -- completed points are skipped on
  re-runs and resumed sweeps (see :mod:`repro.farm.cache`);
- **failure containment** -- a job that raises, exceeds its timeout or
  takes its worker down yields a structured :class:`JobFailure` in its
  submission slot (crashed workers are replaced by rebuilding the
  pool); the rest of the sweep completes;
- **observability** -- per-job ``farm.*`` counters and histograms plus
  progress instants into any obs sink.  These are wall-clock
  operational telemetry and deliberately *outside* the determinism
  contract; the deterministic artifact is the ordered aggregate.

Normalization rule: every result -- freshly computed, worker-returned
or cache-rehydrated -- passes through one JSON round-trip before it
enters an outcome, so all three are indistinguishable and
``CampaignResult.aggregate_json()`` is byte-identical across
``jobs=1``, ``jobs=N`` and warm-cache re-runs.
"""

from __future__ import annotations

import multiprocessing
import time
import traceback
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from repro.farm.cache import ResultCache
from repro.farm.job import (
    FAILURE_CRASH, FAILURE_ERROR, FAILURE_TIMEOUT, Job, JobFailure,
    JobOutcome, canonical_json, json_roundtrip, resolve_ref, source_salt,
)
from repro.obs.metrics import MetricsRegistry


def _execute_payload(payload: Tuple[str, Any, int]) -> Tuple[str, Any, float]:
    """Worker-side entry: resolve the function by name and run it.

    Returns ``("ok", result, elapsed)`` or ``("error", message, elapsed)``;
    never raises, so the only way a future fails is the worker dying.
    """
    ref, config, seed = payload
    start = time.perf_counter()
    try:
        fn = resolve_ref(ref)
        result = fn(config, seed)
        canonical_json(result)  # non-JSON results must fail here, loudly
        return ("ok", result, time.perf_counter() - start)
    except BaseException as error:  # noqa: BLE001 -- structured, not lost
        tail = traceback.format_exc(limit=3).strip().splitlines()[-1]
        message = f"{type(error).__name__}: {error}"
        if tail and tail not in message:
            message = f"{message} [{tail}]"
        return ("error", message, time.perf_counter() - start)


@dataclass
class Executor:
    """Execution policy for campaigns: how wide, how patient, where the
    cache lives, and which obs sink/metrics receive farm telemetry.

    ``jobs=1`` (the default) is the in-process reference path; any
    ``jobs>1`` requires every job function -- and every function named
    inside job configs -- to be a module-level importable function.
    """

    jobs: int = 1
    cache_dir: Optional[str] = None
    timeout: Optional[float] = None   # wall seconds per job attempt
    retries: int = 1                  # extra attempts after a failure
    sink: Optional[Any] = None
    metrics: Optional[MetricsRegistry] = None
    salt: str = ""                    # campaign-level cache salt

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {self.jobs}")
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError(f"timeout must be > 0, got {self.timeout}")

    def campaign(self, name: str = "campaign") -> "Campaign":
        return Campaign(name, executor=self)


@dataclass
class CampaignResult:
    """All outcomes of one campaign, in job-submission order."""

    name: str
    outcomes: List[JobOutcome]
    workers: int
    wall_seconds: float = 0.0

    @property
    def results(self) -> List[Any]:
        """Per-slot results (``None`` where the job failed)."""
        return [outcome.result for outcome in self.outcomes]

    @property
    def failures(self) -> List[JobFailure]:
        return [o.failure for o in self.outcomes if o.failure is not None]

    @property
    def executed(self) -> int:
        """Jobs that actually ran (cache hits excluded)."""
        return sum(1 for o in self.outcomes if not o.cached)

    @property
    def cached(self) -> int:
        return sum(1 for o in self.outcomes if o.cached)

    @property
    def ok(self) -> bool:
        return not self.failures

    def aggregate_json(self) -> str:
        """The deterministic aggregate: canonical JSON of the ordered
        result list.  Bit-for-bit identical across worker counts and
        across cold/warm cache runs."""
        return canonical_json(self.results)

    def raise_on_failure(self) -> "CampaignResult":
        if self.failures:
            summary = "; ".join(f"{f.name}: {f.kind}: {f.message}"
                                for f in self.failures[:5])
            raise RuntimeError(
                f"campaign {self.name!r}: {len(self.failures)} job(s) "
                f"failed ({summary})")
        return self

    def stats(self) -> Dict[str, Any]:
        return {"jobs": len(self.outcomes), "executed": self.executed,
                "cached": self.cached, "failed": len(self.failures),
                "workers": self.workers,
                "wall_seconds": self.wall_seconds}

    def __repr__(self) -> str:
        return (f"CampaignResult({self.name!r}, jobs={len(self.outcomes)}, "
                f"executed={self.executed}, cached={self.cached}, "
                f"failed={len(self.failures)})")


class Campaign:
    """An ordered batch of jobs plus the policy to run them."""

    def __init__(self, name: str = "campaign",
                 executor: Optional[Executor] = None) -> None:
        self.name = name
        self.executor = executor if executor is not None else Executor()
        self.jobs: List[Job] = []
        self._salts: Dict[str, str] = {}

    # ------------------------------------------------------------------
    def add(self, fn: Callable[[Any, int], Any], config: Any = None,
            seed: int = 0, name: Optional[str] = None) -> Job:
        """Submit one job; submission order is aggregation order."""
        job = Job.build(fn, config=config, seed=seed, name=name)
        if self.executor.jobs > 1:
            # Multi-process campaigns must be able to re-import the
            # function by name inside a worker; fail at submission, not
            # at the bottom of a 4-worker sweep.
            resolve_ref(job.ref)
        self.jobs.append(job)
        return job

    def extend(self, fn: Callable[[Any, int], Any],
               specs: Iterable[Tuple[Any, int]]) -> List[Job]:
        """Submit ``(config, seed)`` pairs in order."""
        return [self.add(fn, config=config, seed=seed)
                for config, seed in specs]

    # ------------------------------------------------------------------
    def _salt_for(self, job: Job) -> str:
        salt = self._salts.get(job.ref)
        if salt is None:
            salt = f"{self.executor.salt}:{source_salt(job.fn)}"
            self._salts[job.ref] = salt
        return salt

    def manifest(self) -> Dict[str, Any]:
        """The JSON-pure description from which this campaign can be
        rebuilt: executor salt plus the ordered job list."""
        return {
            "salt": self.executor.salt,
            "jobs": [{"ref": job.ref, "config": job.config,
                      "seed": job.seed, "name": job.name}
                     for job in self.jobs],
        }

    @classmethod
    def from_manifest(cls, cache_dir: str, name: str = "campaign",
                      executor: Optional[Executor] = None) -> "Campaign":
        """Rebuild a campaign from the manifest persisted in the result
        cache by a previous :meth:`run` -- same name, same ordered job
        list, same cache salt, hence the same content-addressed keys.
        """
        manifest = ResultCache(cache_dir).load_manifest(name)
        executor = executor if executor is not None else Executor()
        executor = replace(executor, cache_dir=cache_dir,
                           salt=manifest["salt"])
        campaign = cls(name, executor=executor)
        for spec in manifest["jobs"]:
            campaign.add(resolve_ref(spec["ref"]), config=spec["config"],
                         seed=spec["seed"], name=spec["name"])
        return campaign

    @classmethod
    def resume(cls, cache_dir: str, name: str = "campaign",
               executor: Optional[Executor] = None) -> CampaignResult:
        """Resume an interrupted campaign: rebuild it from the persisted
        manifest and run it against the same cache.

        Completed shards are cache hits and are skipped; only the
        incomplete remainder executes.  The aggregate is byte-identical
        to a never-interrupted run (the normalization rule makes cached
        and fresh results indistinguishable).  ``executor`` optionally
        overrides execution policy (width, timeout, retries) -- the
        cache directory and salt always come from the manifest so the
        key set cannot drift.
        """
        return cls.from_manifest(cache_dir, name, executor).run()

    def run(self) -> CampaignResult:
        """Execute every job (cache permitting) and aggregate in order."""
        executor = self.executor
        metrics = executor.metrics if executor.metrics is not None \
            else MetricsRegistry()
        sink = executor.sink
        started = time.perf_counter()
        cache = ResultCache(executor.cache_dir) \
            if executor.cache_dir else None
        if cache is not None:
            # Persist the campaign manifest *before* dispatching any
            # work: a crash/SIGKILL/pool-break mid-sweep leaves behind
            # the full job list, so Campaign.resume() can rebuild the
            # identical key set and skip completed shards.
            cache.store_manifest(self.name, self.manifest())

        outcomes = [JobOutcome(index, job, job.key(self._salt_for(job)))
                    for index, job in enumerate(self.jobs)]
        metrics.counter("farm.jobs.submitted").inc(len(outcomes))

        pending: List[JobOutcome] = []
        for outcome in outcomes:
            if cache is not None:
                hit, result = cache.lookup(outcome.key)
                if hit:
                    outcome.result = result
                    outcome.cached = True
                    metrics.counter("farm.jobs.cached").inc()
                    continue
            pending.append(outcome)

        if pending:
            if executor.jobs <= 1:
                self._run_inline(pending, cache, metrics, sink,
                                 len(outcomes))
            else:
                self._run_pool(pending, cache, metrics, sink,
                               len(outcomes))

        result = CampaignResult(self.name, outcomes,
                                workers=executor.jobs,
                                wall_seconds=time.perf_counter() - started)
        if sink is not None:
            sink.instant("farm.campaign", track="farm",
                         campaign=self.name, **result.stats())
        return result

    # ------------------------------------------------------------------
    def _complete(self, outcome: JobOutcome, result: Any, elapsed: float,
                  cache: Optional[ResultCache], metrics: MetricsRegistry,
                  sink: Optional[Any], total: int, done: int) -> None:
        outcome.result = json_roundtrip(result)
        outcome.elapsed = elapsed
        metrics.counter("farm.jobs.executed").inc()
        metrics.histogram("farm.job_seconds").observe(elapsed)
        if cache is not None:
            cache.store(outcome.key, outcome.result,
                        meta={"fn": outcome.job.ref,
                              "name": outcome.job.name,
                              "seed": outcome.job.seed,
                              "config": outcome.job.config})
        self._progress(outcome, "ok", metrics, sink, total, done)

    def _fail(self, outcome: JobOutcome, kind: str, message: str,
              metrics: MetricsRegistry, sink: Optional[Any], total: int,
              done: int) -> None:
        outcome.failure = JobFailure(
            name=outcome.job.name, ref=outcome.job.ref,
            seed=outcome.job.seed, kind=kind, message=message,
            attempts=outcome.attempts)
        metrics.counter("farm.jobs.failed").inc()
        metrics.counter(f"farm.failures.{kind}").inc()
        self._progress(outcome, kind, metrics, sink, total, done)

    def _progress(self, outcome: JobOutcome, status: str,
                  metrics: MetricsRegistry, sink: Optional[Any],
                  total: int, done: int) -> None:
        if sink is not None:
            sink.instant("farm.job", track="farm", job=outcome.job.name,
                         status=status, attempts=outcome.attempts,
                         elapsed=round(outcome.elapsed, 6))
            sink.instant("farm.progress", track="farm", done=done,
                         total=total, campaign=self.name)

    # ------------------------------------------------------------------
    # in-process reference path
    # ------------------------------------------------------------------
    def _run_inline(self, pending: List[JobOutcome],
                    cache: Optional[ResultCache],
                    metrics: MetricsRegistry, sink: Optional[Any],
                    total: int) -> None:
        done = total - len(pending)
        for outcome in pending:
            outcome.attempts = 1
            start = time.perf_counter()
            done += 1
            try:
                result = outcome.job.fn(outcome.job.config,
                                        outcome.job.seed)
                canonical_json(result)
            except BaseException as error:  # noqa: BLE001
                metrics.counter("farm.errors").inc()
                self._fail(outcome, FAILURE_ERROR,
                           f"{type(error).__name__}: {error}", metrics,
                           sink, total, done)
                continue
            self._complete(outcome, result, time.perf_counter() - start,
                           cache, metrics, sink, total, done)

    # ------------------------------------------------------------------
    # multi-process path
    # ------------------------------------------------------------------
    @staticmethod
    def _make_pool(workers: int) -> ProcessPoolExecutor:
        # Prefer fork where available: workers inherit imported modules,
        # so job functions defined in scripts and test modules resolve.
        methods = multiprocessing.get_all_start_methods()
        context = multiprocessing.get_context("fork") \
            if "fork" in methods else None
        return ProcessPoolExecutor(max_workers=workers, mp_context=context)

    @staticmethod
    def _teardown_pool(pool: ProcessPoolExecutor) -> None:
        """Tear a pool down without waiting on hung or dead workers."""
        processes = list(getattr(pool, "_processes", {}).values())
        pool.shutdown(wait=False, cancel_futures=True)
        for process in processes:
            try:
                process.terminate()
            except (OSError, ValueError, AttributeError):
                pass

    def _run_pool(self, pending: List[JobOutcome],
                  cache: Optional[ResultCache], metrics: MetricsRegistry,
                  sink: Optional[Any], total: int) -> None:
        queue = deque(pending)
        state = {"done": total - len(pending)}
        while queue:
            suspects = self._drain(queue, self.executor.jobs, cache,
                                   metrics, sink, total, state)
            # A multi-job pool break cannot attribute blame, so the
            # interrupted jobs come back as suspects with their attempt
            # refunded.  Re-run each alone: in a width-1 pool a crash is
            # attributable, so the guilty job is charged and retried or
            # failed without starving its innocent siblings.
            for suspect in suspects:
                solo = deque([suspect])
                self._drain(solo, 1, cache, metrics, sink, total, state)

    def _drain(self, queue: "deque[JobOutcome]", width: int,
               cache: Optional[ResultCache], metrics: MetricsRegistry,
               sink: Optional[Any], total: int,
               state: Dict[str, int]) -> List[JobOutcome]:
        """Run jobs from ``queue`` on pools of ``width`` workers until
        the queue drains, rebuilding the pool after timeouts and
        attributable crashes.  Returns the interrupted jobs of an
        *unattributable* pool break (attempts refunded, submission
        order) for isolated re-execution; ``[]`` once the queue is
        empty."""
        executor = self.executor
        max_attempts = executor.retries + 1

        def retry_or_fail(outcome: JobOutcome, kind: str,
                          message: str) -> None:
            if outcome.attempts < max_attempts:
                metrics.counter("farm.jobs.retried").inc()
                queue.append(outcome)
            else:
                state["done"] += 1
                self._fail(outcome, kind, message, metrics, sink, total,
                           state["done"])

        while queue:
            pool = self._make_pool(width)
            rebuild = False
            in_flight: Dict[Any, Tuple[JobOutcome, float]] = {}
            try:
                while (queue or in_flight) and not rebuild:
                    while queue and len(in_flight) < width:
                        outcome = queue.popleft()
                        outcome.attempts += 1
                        job = outcome.job
                        future = pool.submit(
                            _execute_payload,
                            (job.ref, job.config, job.seed))
                        in_flight[future] = (outcome, time.monotonic())

                    wait_timeout = None
                    if executor.timeout is not None:
                        now = time.monotonic()
                        deadlines = [start + executor.timeout - now
                                     for _, start in in_flight.values()]
                        wait_timeout = max(min(deadlines), 0.01)
                    finished, _ = wait(set(in_flight), timeout=wait_timeout,
                                       return_when=FIRST_COMPLETED)

                    broken: List[JobOutcome] = []
                    for future in finished:
                        outcome, _start = in_flight.pop(future)
                        try:
                            status, payload, elapsed = future.result()
                        except BrokenProcessPool:
                            # Completed siblings in this same batch keep
                            # their results; only the interrupted ones
                            # are collected.
                            broken.append(outcome)
                            continue
                        if status == "ok":
                            state["done"] += 1
                            self._complete(outcome, payload, elapsed,
                                           cache, metrics, sink, total,
                                           state["done"])
                        else:
                            metrics.counter("farm.errors").inc()
                            retry_or_fail(outcome, FAILURE_ERROR, payload)

                    if broken:
                        metrics.counter("farm.crashes").inc()
                        if len(broken) == 1 and not in_flight:
                            # Alone in the pool: blame is certain.
                            retry_or_fail(broken[0], FAILURE_CRASH,
                                          "worker process died")
                            rebuild = True
                            continue
                        suspects = broken + [o for o, _ in
                                             in_flight.values()]
                        in_flight.clear()
                        for suspect in suspects:
                            suspect.attempts -= 1
                        return sorted(suspects, key=lambda o: o.index)

                    if executor.timeout is None:
                        continue
                    now = time.monotonic()
                    expired = [(future, outcome)
                               for future, (outcome, start)
                               in in_flight.items()
                               if now - start >= executor.timeout]
                    if not expired:
                        continue
                    # Hung workers cannot be cancelled individually:
                    # replace the pool.  The expired jobs are charged;
                    # innocent in-flight siblings are requeued with
                    # their interrupted attempt refunded.
                    for future, outcome in expired:
                        in_flight.pop(future, None)
                        metrics.counter("farm.timeouts").inc()
                        if outcome.attempts < max_attempts:
                            # This timed-out job gets another attempt
                            # after the pool teardown below.
                            metrics.counter("farm.retries").inc()
                        retry_or_fail(
                            outcome, FAILURE_TIMEOUT,
                            f"exceeded {executor.timeout:g}s timeout")
                    for outcome, _start in in_flight.values():
                        outcome.attempts -= 1
                        queue.append(outcome)
                    in_flight.clear()
                    rebuild = True
            finally:
                self._teardown_pool(pool)
        return []


def run_campaign(fn: Callable[[Any, int], Any],
                 specs: Iterable[Tuple[Any, int]],
                 executor: Optional[Executor] = None,
                 name: str = "campaign") -> CampaignResult:
    """One-shot convenience: run ``fn`` over ``(config, seed)`` pairs."""
    campaign = Campaign(name, executor=executor)
    campaign.extend(fn, specs)
    return campaign.run()


__all__ = ["Campaign", "CampaignResult", "Executor", "run_campaign"]
