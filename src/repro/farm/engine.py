"""The campaign engine: deterministic job execution over pluggable backends.

A :class:`Campaign` dispatches its jobs through an
:class:`~repro.farm.backends.ExecutorBackend` -- the in-process
``inline`` oracle, the per-campaign ``fork`` pool, or persistent
``daemon`` workers -- optionally scheduled through work-stealing shards
(:mod:`repro.farm.backends.shards`), and guarantees:

- **ordered aggregation** -- outcomes are merged in job-submission
  order, so any backend/shard combination's aggregate is byte-identical
  to the serial one no matter which worker finished first;
- **content-addressed caching** -- completed points are skipped on
  re-runs and resumed sweeps, through any :class:`CacheTier` stack
  (see :mod:`repro.farm.cache`);
- **failure containment** -- a job that raises, exceeds its timeout or
  takes its worker down yields a structured :class:`JobFailure` in its
  submission slot (crashed workers are replaced; unattributable pool
  breaks re-run every suspect in isolation); the rest of the sweep
  completes;
- **observability** -- per-job ``farm.*`` counters and histograms plus
  progress instants into any obs sink.  These are wall-clock
  operational telemetry and deliberately *outside* the determinism
  contract; the deterministic artifact is the ordered aggregate.

Normalization rule: every result -- freshly computed, worker-returned
or cache-rehydrated -- passes through one JSON round-trip before it
enters an outcome, so all three are indistinguishable and
``CampaignResult.aggregate_json()`` is byte-identical across backends,
worker counts, shard schedules and warm-cache re-runs.

The one construction surface is ``Campaign.build(...)`` /
``Campaign.resume(...)``; ``run_campaign`` and ``Campaign.from_manifest``
survive as thin delegates that raise
:class:`~repro.core.serde.ReproDeprecationWarning` (see DESIGN.md for
the removal schedule).
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from repro.core.serde import ReproDeprecationWarning
from repro.farm.backends import (
    STATUS_CRASH, STATUS_ERROR, STATUS_OK, STATUS_SUSPECT,
    ExecutorBackend, make_backend, require_fork,
)
from repro.farm.backends.base import execute_payload as _execute_payload
from repro.farm.backends.shards import JobPlanner, make_planner
from repro.farm.cache import CacheLike, CacheTier, as_cache_tier
from repro.farm.job import (
    FAILURE_CRASH, FAILURE_ERROR, FAILURE_TIMEOUT, Job, JobFailure,
    JobOutcome, canonical_json, json_roundtrip, resolve_ref, source_salt,
)
from repro.obs.metrics import MetricsRegistry

_BACKEND_NAMES = ("auto", "inline", "fork", "daemon")


@dataclass
class Executor:
    """Execution policy for campaigns: which backend, how wide, how
    patient, where the cache lives, and which obs sink/metrics receive
    farm telemetry.

    ``jobs=1`` (the default) resolves to the in-process reference
    backend; any multi-process backend requires every job function --
    and every function named inside job configs -- to be a module-level
    importable function.

    ``cache`` accepts anything :func:`repro.farm.cache.as_cache_tier`
    does: a directory path, a ready :class:`CacheTier`, or a list of
    tiers (local first, shared/remote last).  ``cache_dir`` is the
    legacy spelling of a single local path and is kept as an alias.
    """

    jobs: int = 1
    backend: str = "auto"             # auto | inline | fork | daemon
    cache: CacheLike = None
    cache_dir: Optional[str] = None   # legacy alias for cache=<path>
    timeout: Optional[float] = None   # wall seconds per job attempt
    retries: int = 1                  # extra attempts after a failure
    shards: Optional[int] = None      # work-stealing shards (None = FIFO)
    steal: bool = True                # False = static shard partition
    sink: Optional[Any] = None
    metrics: Optional[MetricsRegistry] = None
    salt: str = ""                    # campaign-level cache salt

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {self.jobs}")
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError(f"timeout must be > 0, got {self.timeout}")
        if self.backend not in _BACKEND_NAMES:
            raise ValueError(f"unknown backend {self.backend!r} "
                             f"(expected one of {_BACKEND_NAMES})")
        if self.shards is not None and self.shards < 1:
            raise ValueError(f"shards must be >= 1, got {self.shards}")
        if self.cache is not None and self.cache_dir is not None:
            raise ValueError("give either cache= or the legacy "
                             "cache_dir=, not both")

    # ------------------------------------------------------------------
    def resolved_backend(self) -> str:
        """The concrete backend name ``auto`` resolves to."""
        if self.backend != "auto":
            return self.backend
        return "inline" if self.jobs <= 1 else "fork"

    def width(self) -> int:
        """Worker slots the resolved backend will run."""
        return 1 if self.resolved_backend() == "inline" else self.jobs

    def cache_tier(self) -> Optional[CacheTier]:
        """The composed cache stack (None when caching is off)."""
        spec = self.cache if self.cache is not None else self.cache_dir
        return as_cache_tier(spec)

    def campaign(self, name: str = "campaign") -> "Campaign":
        return Campaign(name, executor=self)


def resolve_executor(executor: Optional[Executor] = None, *,
                     jobs: Optional[int] = None,
                     backend: Optional[str] = None,
                     cache: CacheLike = None,
                     timeout: Optional[float] = None,
                     retries: Optional[int] = None,
                     shards: Optional[int] = None,
                     steal: Optional[bool] = None,
                     salt: Optional[str] = None,
                     sink: Optional[Any] = None,
                     metrics: Optional[MetricsRegistry] = None,
                     ) -> Optional[Executor]:
    """The uniform ``executor=``/``jobs=``/``cache=`` merge every
    campaign surface uses.

    Returns ``None`` when nothing was requested (callers keep their
    serial fast paths); otherwise merges the keyword overrides onto
    ``executor`` (or a fresh default one).  A ``cache=`` override on an
    executor that carried a legacy ``cache_dir`` replaces it.
    """
    overrides: Dict[str, Any] = {}
    for key, value in (("jobs", jobs), ("backend", backend),
                       ("cache", cache), ("timeout", timeout),
                       ("retries", retries), ("shards", shards),
                       ("steal", steal), ("salt", salt), ("sink", sink),
                       ("metrics", metrics)):
        if value is not None:
            overrides[key] = value
    if executor is None and not overrides:
        return None
    base = executor if executor is not None else Executor()
    if "cache" in overrides and base.cache_dir is not None:
        overrides.setdefault("cache_dir", None)
    return replace(base, **overrides) if overrides else base


@dataclass
class CampaignResult:
    """All outcomes of one campaign, in job-submission order."""

    name: str
    outcomes: List[JobOutcome]
    workers: int
    wall_seconds: float = 0.0

    @property
    def results(self) -> List[Any]:
        """Per-slot results (``None`` where the job failed)."""
        return [outcome.result for outcome in self.outcomes]

    @property
    def failures(self) -> List[JobFailure]:
        return [o.failure for o in self.outcomes if o.failure is not None]

    @property
    def executed(self) -> int:
        """Jobs that actually ran (cache hits excluded)."""
        return sum(1 for o in self.outcomes if not o.cached)

    @property
    def cached(self) -> int:
        return sum(1 for o in self.outcomes if o.cached)

    @property
    def ok(self) -> bool:
        return not self.failures

    def aggregate_json(self) -> str:
        """The deterministic aggregate: canonical JSON of the ordered
        result list.  Bit-for-bit identical across backends, worker
        counts, shard schedules and cold/warm cache runs."""
        return canonical_json(self.results)

    def raise_on_failure(self) -> "CampaignResult":
        if self.failures:
            summary = "; ".join(f"{f.name}: {f.kind}: {f.message}"
                                for f in self.failures[:5])
            raise RuntimeError(
                f"campaign {self.name!r}: {len(self.failures)} job(s) "
                f"failed ({summary})")
        return self

    def stats(self) -> Dict[str, Any]:
        return {"jobs": len(self.outcomes), "executed": self.executed,
                "cached": self.cached, "failed": len(self.failures),
                "workers": self.workers,
                "wall_seconds": self.wall_seconds}

    def __repr__(self) -> str:
        return (f"CampaignResult({self.name!r}, jobs={len(self.outcomes)}, "
                f"executed={self.executed}, cached={self.cached}, "
                f"failed={len(self.failures)})")


class Campaign:
    """An ordered batch of jobs plus the policy to run them.

    Construct through :meth:`build` (one surface for every knob), add
    jobs with :meth:`add`/:meth:`extend`, execute with :meth:`run`;
    :meth:`resume` rebuilds and re-runs an interrupted campaign from its
    cache-persisted manifest.
    """

    def __init__(self, name: str = "campaign",
                 executor: Optional[Executor] = None) -> None:
        self.name = name
        self.executor = executor if executor is not None else Executor()
        self.jobs: List[Job] = []
        self._salts: Dict[str, str] = {}

    # ------------------------------------------------------------------
    # the one construction surface
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, name: str = "campaign", *,
              executor: Optional[Executor] = None,
              resume_from: CacheLike = None,
              jobs: Optional[int] = None,
              backend: Optional[str] = None,
              cache: CacheLike = None,
              timeout: Optional[float] = None,
              retries: Optional[int] = None,
              shards: Optional[int] = None,
              steal: Optional[bool] = None,
              salt: Optional[str] = None,
              sink: Optional[Any] = None,
              metrics: Optional[MetricsRegistry] = None) -> "Campaign":
        """Build a campaign from an executor and/or individual knobs.

        Keyword overrides win over the ``executor`` baseline.  With
        ``resume_from=<cache>``, the job list, name and cache salt are
        rebuilt from the manifest that an earlier :meth:`run` persisted
        in that cache -- the cache and salt then always come from the
        manifest side so the content-addressed key set cannot drift,
        while execution policy (jobs/backend/timeout/...) remains fully
        overridable.
        """
        resolved = resolve_executor(
            executor, jobs=jobs, backend=backend, cache=cache,
            timeout=timeout, retries=retries, shards=shards, steal=steal,
            salt=salt, sink=sink, metrics=metrics)
        if resume_from is None:
            return cls(name, executor=resolved)
        tier = as_cache_tier(resume_from)
        manifest = tier.load_manifest(name)
        resolved = replace(resolved if resolved is not None else Executor(),
                           cache=tier, cache_dir=None,
                           salt=manifest["salt"])
        campaign = cls(name, executor=resolved)
        for spec in manifest["jobs"]:
            campaign.add(resolve_ref(spec["ref"]), config=spec["config"],
                         seed=spec["seed"], name=spec["name"])
        return campaign

    @classmethod
    def resume(cls, cache: CacheLike, name: str = "campaign",
               executor: Optional[Executor] = None,
               **policy: Any) -> CampaignResult:
        """Resume an interrupted campaign: rebuild it from the persisted
        manifest and run it against the same cache.

        Completed shards are cache hits and are skipped; only the
        incomplete remainder executes.  The aggregate is byte-identical
        to a never-interrupted run (the normalization rule makes cached
        and fresh results indistinguishable).  ``executor`` and/or
        policy keywords (``jobs=``, ``backend=``, ``timeout=``, ...)
        override execution policy -- the cache and salt always come from
        the manifest so the key set cannot drift.
        """
        return cls.build(name, executor=executor, resume_from=cache,
                         **policy).run()

    @classmethod
    def from_manifest(cls, cache_dir: str, name: str = "campaign",
                      executor: Optional[Executor] = None) -> "Campaign":
        """Deprecated alias: use ``Campaign.build(name,
        resume_from=cache_dir, ...)``."""
        warnings.warn(
            "Campaign.from_manifest() is deprecated; use "
            "Campaign.build(name, resume_from=<cache>) instead",
            ReproDeprecationWarning, stacklevel=2)
        return cls.build(name, executor=executor, resume_from=cache_dir)

    # ------------------------------------------------------------------
    def add(self, fn: Callable[[Any, int], Any], config: Any = None,
            seed: int = 0, name: Optional[str] = None) -> Job:
        """Submit one job; submission order is aggregation order."""
        job = Job.build(fn, config=config, seed=seed, name=name)
        if self.executor.resolved_backend() != "inline":
            # Multi-process campaigns must be able to fork workers and
            # re-import the function by name inside them; fail at
            # submission, not at the bottom of a 4-worker sweep.
            require_fork("a multi-process campaign backend")
            resolve_ref(job.ref)
        self.jobs.append(job)
        return job

    def extend(self, fn: Callable[[Any, int], Any],
               specs: Iterable[Tuple[Any, int]]) -> List[Job]:
        """Submit ``(config, seed)`` pairs in order."""
        return [self.add(fn, config=config, seed=seed)
                for config, seed in specs]

    # ------------------------------------------------------------------
    def _salt_for(self, job: Job) -> str:
        salt = self._salts.get(job.ref)
        if salt is None:
            salt = f"{self.executor.salt}:{source_salt(job.fn)}"
            self._salts[job.ref] = salt
        return salt

    def manifest(self) -> Dict[str, Any]:
        """The JSON-pure description from which this campaign can be
        rebuilt: executor salt plus the ordered job list."""
        return {
            "salt": self.executor.salt,
            "jobs": [{"ref": job.ref, "config": job.config,
                      "seed": job.seed, "name": job.name}
                     for job in self.jobs],
        }

    def run(self) -> CampaignResult:
        """Execute every job (cache permitting) and aggregate in order."""
        executor = self.executor
        metrics = executor.metrics if executor.metrics is not None \
            else MetricsRegistry()
        sink = executor.sink
        started = time.perf_counter()
        cache = executor.cache_tier()
        if cache is not None:
            # Persist the campaign manifest *before* dispatching any
            # work: a crash/SIGKILL/pool-break mid-sweep leaves behind
            # the full job list, so Campaign.resume() can rebuild the
            # identical key set and skip completed shards.
            cache.store_manifest(self.name, self.manifest())

        outcomes = [JobOutcome(index, job, job.key(self._salt_for(job)))
                    for index, job in enumerate(self.jobs)]
        metrics.counter("farm.jobs.submitted").inc(len(outcomes))

        pending: List[JobOutcome] = []
        for outcome in outcomes:
            if cache is not None:
                hit, result = cache.lookup(outcome.key)
                if hit:
                    outcome.result = result
                    outcome.cached = True
                    metrics.counter("farm.jobs.cached").inc()
                    continue
            pending.append(outcome)

        if pending:
            self._run_backend(pending, cache, metrics, sink,
                              len(outcomes))

        result = CampaignResult(self.name, outcomes,
                                workers=executor.width(),
                                wall_seconds=time.perf_counter() - started)
        if sink is not None:
            sink.instant("farm.campaign", track="farm",
                         campaign=self.name, **result.stats())
        return result

    # ------------------------------------------------------------------
    def _complete(self, outcome: JobOutcome, result: Any, elapsed: float,
                  cache: Optional[CacheTier], metrics: MetricsRegistry,
                  sink: Optional[Any], total: int, done: int) -> None:
        outcome.result = json_roundtrip(result)
        outcome.elapsed = elapsed
        metrics.counter("farm.jobs.executed").inc()
        metrics.histogram("farm.job_seconds").observe(elapsed)
        if cache is not None:
            cache.store(outcome.key, outcome.result,
                        meta={"fn": outcome.job.ref,
                              "name": outcome.job.name,
                              "seed": outcome.job.seed,
                              "config": outcome.job.config})
        self._progress(outcome, "ok", metrics, sink, total, done)

    def _fail(self, outcome: JobOutcome, kind: str, message: str,
              metrics: MetricsRegistry, sink: Optional[Any], total: int,
              done: int) -> None:
        outcome.failure = JobFailure(
            name=outcome.job.name, ref=outcome.job.ref,
            seed=outcome.job.seed, kind=kind, message=message,
            attempts=outcome.attempts)
        metrics.counter("farm.jobs.failed").inc()
        metrics.counter(f"farm.failures.{kind}").inc()
        self._progress(outcome, kind, metrics, sink, total, done)

    def _progress(self, outcome: JobOutcome, status: str,
                  metrics: MetricsRegistry, sink: Optional[Any],
                  total: int, done: int) -> None:
        if sink is not None:
            sink.instant("farm.job", track="farm", job=outcome.job.name,
                         status=status, attempts=outcome.attempts,
                         elapsed=round(outcome.elapsed, 6))
            sink.instant("farm.progress", track="farm", done=done,
                         total=total, campaign=self.name)

    # ------------------------------------------------------------------
    # the generic backend loop
    # ------------------------------------------------------------------
    def _run_backend(self, pending: List[JobOutcome],
                     cache: Optional[CacheTier],
                     metrics: MetricsRegistry, sink: Optional[Any],
                     total: int) -> None:
        executor = self.executor
        kind = executor.resolved_backend()
        width = executor.width()
        planner = make_planner(pending, width, executor.shards,
                               steal=executor.steal)
        state = {"done": total - len(pending)}
        suspects = self._drive(planner, kind, width, cache, metrics,
                               sink, total, state)
        # A multi-job pool break cannot attribute blame, so the
        # interrupted jobs come back as suspects with their attempt
        # refunded.  Re-run each alone: at width 1 a crash is
        # attributable, so the guilty job is charged and retried or
        # failed without starving its innocent siblings.
        while suspects:
            suspect = suspects.pop(0)
            solo = JobPlanner([suspect])
            suspects.extend(self._drive(solo, kind, 1, cache, metrics,
                                        sink, total, state))

    def _drive(self, planner: JobPlanner, kind: str, width: int,
               cache: Optional[CacheTier], metrics: MetricsRegistry,
               sink: Optional[Any], total: int,
               state: Dict[str, int]) -> List[JobOutcome]:
        """Run the planner's jobs on one backend until it drains.

        Returns the interrupted jobs of an *unattributable* pool break
        (attempts refunded, submission order) for isolated
        re-execution; ``[]`` once the planner is empty."""
        executor = self.executor
        backend = make_backend(kind, width)
        in_process = backend.capabilities.in_process
        # The in-process oracle executes exactly once per job: there is
        # no crash or timeout to retry around, and an error is an error.
        max_attempts = 1 if in_process else executor.retries + 1
        enforce_timeout = executor.timeout is not None and not in_process

        def retry_or_fail(outcome: JobOutcome, kind_: str,
                          message: str) -> None:
            if outcome.attempts < max_attempts:
                metrics.counter("farm.jobs.retried").inc()
                planner.requeue(outcome)
            else:
                state["done"] += 1
                self._fail(outcome, kind_, message, metrics, sink, total,
                           state["done"])

        suspects: List[JobOutcome] = []
        in_flight: Dict[int, Tuple[JobOutcome, int, float]] = {}
        free_slots: List[int] = list(range(width))
        try:
            while planner.remaining or in_flight:
                for slot in list(free_slots):
                    if not planner.remaining:
                        break
                    outcome = planner.take(slot)
                    if outcome is None:
                        # Static shards: this slot's home shard is dry
                        # and stealing is off; it idles until a retry
                        # lands back home.
                        continue
                    free_slots.remove(slot)
                    outcome.attempts += 1
                    backend.submit(outcome.index, outcome.job)
                    in_flight[outcome.index] = (outcome, slot,
                                                time.monotonic())

                if not in_flight:
                    if planner.remaining:
                        raise RuntimeError(
                            f"campaign {self.name!r}: planner starved "
                            f"with {planner.remaining} job(s) remaining")
                    break

                wait_timeout = None
                if enforce_timeout:
                    now = time.monotonic()
                    deadlines = [start + executor.timeout - now
                                 for _, _, start in in_flight.values()]
                    wait_timeout = max(min(deadlines), 0.01)
                completions = backend.drain(wait_timeout)

                crashed = False
                for completion in completions:
                    entry = in_flight.pop(completion.tag, None)
                    if entry is None:
                        continue
                    outcome, slot, _start = entry
                    free_slots.append(slot)
                    if completion.status == STATUS_OK:
                        state["done"] += 1
                        self._complete(outcome, completion.value,
                                       completion.elapsed, cache, metrics,
                                       sink, total, state["done"])
                    elif completion.status == STATUS_ERROR:
                        metrics.counter("farm.errors").inc()
                        retry_or_fail(outcome, FAILURE_ERROR,
                                      completion.value)
                    elif completion.status == STATUS_CRASH:
                        crashed = True
                        retry_or_fail(outcome, FAILURE_CRASH,
                                      completion.value
                                      or "worker process died")
                    else:  # STATUS_SUSPECT
                        crashed = True
                        outcome.attempts -= 1
                        suspects.append(outcome)
                free_slots.sort()
                if crashed:
                    metrics.counter("farm.crashes").inc()

                if not enforce_timeout or not in_flight:
                    continue
                now = time.monotonic()
                expired = [(tag, entry) for tag, entry in in_flight.items()
                           if now - entry[2] >= executor.timeout]
                if not expired:
                    continue
                # Kill the expired jobs.  Backends without per-job
                # timeout-kill (the fork pool) take innocent in-flight
                # siblings down with them; those come back as collateral
                # and are requeued with their interrupted attempt
                # refunded.
                collateral = backend.cancel([tag for tag, _ in expired])
                for tag, (outcome, slot, _start) in expired:
                    in_flight.pop(tag, None)
                    free_slots.append(slot)
                    metrics.counter("farm.timeouts").inc()
                    if outcome.attempts < max_attempts:
                        # This timed-out job gets another attempt on a
                        # fresh worker.
                        metrics.counter("farm.retries").inc()
                    retry_or_fail(
                        outcome, FAILURE_TIMEOUT,
                        f"exceeded {executor.timeout:g}s timeout")
                for tag in collateral:
                    entry = in_flight.pop(tag, None)
                    if entry is None:
                        continue
                    outcome, slot, _start = entry
                    free_slots.append(slot)
                    outcome.attempts -= 1
                    planner.requeue(outcome)
                free_slots.sort()
        finally:
            backend.teardown()
        return sorted(suspects, key=lambda o: o.index)


def run_campaign(fn: Callable[[Any, int], Any],
                 specs: Iterable[Tuple[Any, int]],
                 executor: Optional[Executor] = None,
                 name: str = "campaign") -> CampaignResult:
    """Deprecated one-shot convenience: use ``Campaign.build(name,
    ...)`` + ``extend`` + ``run``."""
    warnings.warn(
        "run_campaign() is deprecated; use Campaign.build(name, "
        "executor=..., jobs=..., cache=...) and campaign.extend(fn, "
        "specs).run() instead", ReproDeprecationWarning, stacklevel=2)
    campaign = Campaign.build(name, executor=executor)
    campaign.extend(fn, specs)
    return campaign.run()


__all__ = ["Campaign", "CampaignResult", "Executor", "resolve_executor",
           "run_campaign"]
