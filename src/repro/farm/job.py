"""Job model of the campaign engine: named pure functions + data.

A :class:`Job` is the unit the farm schedules: a *named pure function*
(``fn(config, seed) -> result``), a JSON-serializable ``config`` and an
integer ``seed``.  Purity is the whole contract -- given the same
``(fn, config, seed)`` the function must return the same JSON-shaped
value on every run, in every process (the repo's simulations guarantee
exactly this: every run is a pure function of its config and seed).

Everything here is about making that contract *mechanically checkable*:

- :func:`canonical_json` -- the one serialization used for cache keys
  and aggregates (sorted keys, tight separators, no NaN), so equal
  values always produce equal bytes; it now lives in
  :mod:`repro.core.serde` (shared with backend wire frames) and is
  re-exported here for compatibility;
- :func:`func_ref` / :func:`resolve_ref` -- a function's durable name
  (``module:qualname``), the form workers import it by and the form the
  cache keys hash;
- :func:`job_key` -- the content address of one evaluation:
  ``sha256(canonical_json([ref, config, seed, salt]))``.  The ``salt``
  carries the code version (see :func:`source_salt`), so editing a job
  function invalidates its cached results without touching the cache
  directory.
"""

from __future__ import annotations

import hashlib
import inspect
from dataclasses import dataclass, field
from importlib import import_module
from typing import Any, Callable, Dict, Optional

from repro.core.serde import canonical_json, json_roundtrip


def func_ref(fn: Callable[..., Any]) -> str:
    """The durable ``module:qualname`` name of a function."""
    module = getattr(fn, "__module__", None)
    qualname = getattr(fn, "__qualname__", None)
    if not module or not qualname:
        raise TypeError(f"job function {fn!r} has no module/qualname")
    return f"{module}:{qualname}"


def resolve_ref(ref: str) -> Callable[..., Any]:
    """Resolve a ``module:qualname`` reference back to the function.

    Raises :class:`ValueError` for references that can never resolve
    (closures, lambdas defined inside other functions) and lets import
    errors propagate -- a worker must fail loudly, not guess.
    """
    module_name, _, qualname = ref.partition(":")
    if not module_name or not qualname:
        raise ValueError(f"malformed function reference {ref!r} "
                         f"(expected 'module:qualname')")
    if "<locals>" in qualname or "<lambda>" in qualname:
        raise ValueError(
            f"{ref!r} is not importable (closure or lambda); farm jobs "
            f"must be module-level functions")
    obj: Any = import_module(module_name)
    for part in qualname.split("."):
        obj = getattr(obj, part)
    if not callable(obj):
        raise ValueError(f"{ref!r} resolved to non-callable {obj!r}")
    return obj


def source_salt(fn: Callable[..., Any]) -> str:
    """A short digest of the function's source: the code-version salt.

    When the job function's body changes, the salt changes and every
    cached result keyed under the old salt is simply never hit again.
    Functions without retrievable source (builtins, C extensions) salt
    to the empty string -- their cache entries then only invalidate via
    the campaign's explicit ``salt``.
    """
    try:
        source = inspect.getsource(fn)
    except (OSError, TypeError):
        return ""
    return hashlib.sha256(source.encode("utf-8")).hexdigest()[:16]


def job_key(ref: str, config: Any, seed: int, salt: str = "") -> str:
    """Content address of one evaluation."""
    payload = canonical_json([ref, config, seed, salt])
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class Job:
    """One schedulable evaluation.

    ``fn`` is kept for the in-process reference path; identity (cache
    key, worker payload) uses only ``ref``/``config``/``seed`` so a job
    means the same thing in every process.
    """

    fn: Callable[[Any, int], Any]
    config: Any
    seed: int
    name: str
    ref: str

    @classmethod
    def build(cls, fn: Callable[[Any, int], Any], config: Any = None,
              seed: int = 0, name: Optional[str] = None) -> "Job":
        ref = func_ref(fn)
        # Fail at submission time on configs that can never be hashed,
        # shipped to a worker, or cached.
        canonical_json(config)
        if name is None:
            name = f"{ref.rsplit(':', 1)[1]}[{seed}]"
        return cls(fn=fn, config=config, seed=int(seed), name=name, ref=ref)

    def key(self, salt: str = "") -> str:
        return job_key(self.ref, self.config, self.seed, salt)


# Failure kinds, in escalating order of violence.
FAILURE_ERROR = "error"      # the job function raised
FAILURE_TIMEOUT = "timeout"  # the job exceeded the per-job timeout
FAILURE_CRASH = "crash"      # the worker process died underneath it


@dataclass
class JobFailure:
    """Structured record of one job that did not produce a result.

    A failed job never loses the sweep: the campaign carries this record
    in the failed job's submission slot and every other job's result is
    unaffected.
    """

    name: str
    ref: str
    seed: int
    kind: str                 # FAILURE_ERROR | FAILURE_TIMEOUT | FAILURE_CRASH
    message: str
    attempts: int

    def as_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "ref": self.ref, "seed": self.seed,
                "kind": self.kind, "message": self.message,
                "attempts": self.attempts}

    def __repr__(self) -> str:
        return (f"JobFailure({self.name!r}, {self.kind}, "
                f"attempts={self.attempts}, {self.message!r})")


@dataclass
class JobOutcome:
    """What happened to one submitted job, in its submission slot."""

    index: int
    job: Job
    key: str
    result: Any = None
    failure: Optional[JobFailure] = None
    cached: bool = False
    attempts: int = 0
    elapsed: float = 0.0
    extra: Dict[str, Any] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.failure is None


__all__ = [
    "FAILURE_CRASH", "FAILURE_ERROR", "FAILURE_TIMEOUT", "Job",
    "JobFailure", "JobOutcome", "canonical_json", "func_ref",
    "job_key", "json_roundtrip", "resolve_ref", "source_salt",
]
