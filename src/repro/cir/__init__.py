"""Mini-C: the C-language stand-in used by MAPS and the Source Recoder.

The paper's tools (MAPS section IV, Source Recoder section VI) consume C /
C-based SLDL sources.  ``repro.cir`` implements a compact C subset with the
full front-end stack those tools need:

- :mod:`repro.cir.lexer` / :mod:`repro.cir.parser` -- text to AST;
- :mod:`repro.cir.nodes` -- the AST node classes;
- :mod:`repro.cir.typesys` / :mod:`repro.cir.symbols` -- types and scopes;
- :mod:`repro.cir.interp` -- a counting interpreter used both to validate
  that transformations preserve semantics and to estimate task costs;
- :mod:`repro.cir.codegen` -- AST back to compilable-looking C text;
- :mod:`repro.cir.analysis` -- CFG, reaching definitions, liveness,
  def-use chains and loop dependence tests (the "advanced dataflow
  analysis" MAPS uses to extract parallelism).

Supported language: ``int``/``float``/``void``, multi-dimensional arrays,
one-level pointers, functions, ``if``/``while``/``for``/``break``/
``continue``/``return``, the usual operators, and compound assignment.

Example
-------
>>> from repro.cir import parse, run_program
>>> prog = parse('''
... int square(int x) { return x * x; }
... int main() { int s; s = 0; int i;
...   for (i = 0; i < 4; i = i + 1) { s = s + square(i); }
...   return s; }
... ''')
>>> run_program(prog).return_value
14
"""

from repro.cir.lexer import LexError, Token, tokenize
from repro.cir.parser import ParseError, parse, parse_expression
from repro.cir.nodes import (
    ArrayIndex,
    Assign,
    BinOp,
    Block,
    Break,
    Call,
    Continue,
    Decl,
    ExprStmt,
    FloatLit,
    For,
    FuncDef,
    Ident,
    If,
    IntLit,
    Program,
    Return,
    StringLit,
    UnaryOp,
    While,
)
from repro.cir.typesys import ArrayType, PointerType, ScalarType, Type, TypeError_
from repro.cir.symbols import Scope, SymbolTable, build_symbols
from repro.cir.interp import InterpError, Interpreter, RunResult, run_program
from repro.cir.codegen import emit, emit_expression
from repro.cir.typecheck import Diagnostic, TypeCheckError, check_program, require_clean
from repro.cir.clone import clone, clone_list

__all__ = [
    "ArrayIndex", "ArrayType", "Assign", "BinOp", "Block", "Break", "Call",
    "Continue", "Decl", "ExprStmt", "FloatLit", "For", "FuncDef", "Ident",
    "If", "IntLit", "InterpError", "Interpreter", "LexError", "ParseError",
    "PointerType", "Program", "Return", "RunResult", "ScalarType", "Scope",
    "StringLit", "SymbolTable", "Token", "Type", "TypeError_", "UnaryOp",
    "Diagnostic", "TypeCheckError", "While", "build_symbols",
    "check_program", "clone", "clone_list", "emit", "emit_expression",
    "parse", "parse_expression", "require_clean", "run_program",
    "tokenize",
]
