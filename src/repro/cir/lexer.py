"""Tokenizer for the mini-C language.

Produces a flat list of :class:`Token` objects with line/column positions.
Positions survive into the AST, which the Source Recoder's document-sync
engine (section VI) relies on to map text edits back to AST nodes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

KEYWORDS = {
    "int", "float", "void", "if", "else", "while", "for", "return",
    "break", "continue", "const",
}

# Longest-match-first operator table.
OPERATORS = [
    "<<=", ">>=",
    "==", "!=", "<=", ">=", "&&", "||", "+=", "-=", "*=", "/=", "%=",
    "++", "--", "<<", ">>",
    "+", "-", "*", "/", "%", "<", ">", "=", "!", "&", "|", "^", "~",
    "(", ")", "{", "}", "[", "]", ";", ",", "?", ":",
]


class LexError(Exception):
    """Raised on an unrecognized character or malformed literal."""

    def __init__(self, message: str, line: int, col: int) -> None:
        super().__init__(f"{message} at {line}:{col}")
        self.line = line
        self.col = col


@dataclass(frozen=True)
class Token:
    """A lexical token.

    ``kind`` is one of ``'int'``, ``'float'``, ``'string'``, ``'ident'``,
    ``'keyword'``, ``'op'``, ``'eof'``.
    """

    kind: str
    text: str
    line: int
    col: int

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.text!r}, {self.line}:{self.col})"


def tokenize(source: str) -> List[Token]:
    """Tokenize mini-C source text into a list ending with an EOF token."""
    tokens: List[Token] = []
    i = 0
    line = 1
    col = 1
    n = len(source)

    def error(message: str) -> LexError:
        return LexError(message, line, col)

    while i < n:
        ch = source[i]
        # -- whitespace ------------------------------------------------
        if ch == "\n":
            i += 1
            line += 1
            col = 1
            continue
        if ch in " \t\r":
            i += 1
            col += 1
            continue
        # -- comments --------------------------------------------------
        if source.startswith("//", i):
            while i < n and source[i] != "\n":
                i += 1
            continue
        if source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end < 0:
                raise error("unterminated block comment")
            skipped = source[i:end + 2]
            newlines = skipped.count("\n")
            if newlines:
                line += newlines
                col = len(skipped) - skipped.rfind("\n")
            else:
                col += len(skipped)
            i = end + 2
            continue
        # -- numbers ---------------------------------------------------
        if ch.isdigit() or (ch == "." and i + 1 < n and source[i + 1].isdigit()):
            start = i
            start_col = col
            is_float = False
            while i < n and (source[i].isdigit() or source[i] == "."):
                if source[i] == ".":
                    if is_float:
                        raise error("malformed number")
                    is_float = True
                i += 1
                col += 1
            if i < n and source[i] in "eE":
                is_float = True
                i += 1
                col += 1
                if i < n and source[i] in "+-":
                    i += 1
                    col += 1
                if i >= n or not source[i].isdigit():
                    raise error("malformed exponent")
                while i < n and source[i].isdigit():
                    i += 1
                    col += 1
            text = source[start:i]
            kind = "float" if is_float else "int"
            tokens.append(Token(kind, text, line, start_col))
            continue
        # -- identifiers / keywords -------------------------------------
        if ch.isalpha() or ch == "_":
            start = i
            start_col = col
            while i < n and (source[i].isalnum() or source[i] == "_"):
                i += 1
                col += 1
            text = source[start:i]
            kind = "keyword" if text in KEYWORDS else "ident"
            tokens.append(Token(kind, text, line, start_col))
            continue
        # -- strings -----------------------------------------------------
        if ch == '"':
            start_col = col
            i += 1
            col += 1
            chars: List[str] = []
            while i < n and source[i] != '"':
                if source[i] == "\n":
                    raise error("unterminated string literal")
                if source[i] == "\\" and i + 1 < n:
                    esc = source[i + 1]
                    chars.append({"n": "\n", "t": "\t", '"': '"',
                                  "\\": "\\", "0": "\0"}.get(esc, esc))
                    i += 2
                    col += 2
                else:
                    chars.append(source[i])
                    i += 1
                    col += 1
            if i >= n:
                raise error("unterminated string literal")
            i += 1
            col += 1
            tokens.append(Token("string", "".join(chars), line, start_col))
            continue
        # -- operators ---------------------------------------------------
        for op in OPERATORS:
            if source.startswith(op, i):
                tokens.append(Token("op", op, line, col))
                i += len(op)
                col += len(op)
                break
        else:
            raise error(f"unexpected character {ch!r}")

    tokens.append(Token("eof", "", line, col))
    return tokens


__all__ = ["KEYWORDS", "LexError", "OPERATORS", "Token", "tokenize"]
