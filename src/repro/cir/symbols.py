"""Symbol tables and scope construction for mini-C.

:func:`build_symbols` walks a :class:`~repro.cir.nodes.Program` and produces
a :class:`SymbolTable` mapping every identifier *use* to its declaration.
The MAPS partitioner and the Source Recoder both need this binding
information (e.g. "which accesses in this loop touch the same array?").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.cir.nodes import (
    Assign, Block, Call, Decl, Expr, ExprStmt, For, FuncDef,
    Ident, If, Node, Program, Return, Stmt, While,
)
from repro.cir.typesys import Type, TypeError_


@dataclass
class Symbol:
    """A declared name: a global, local, or parameter."""

    name: str
    type: Type
    kind: str  # 'global' | 'local' | 'param' | 'function'
    decl_node: Optional[Node] = None
    const: bool = False

    def __repr__(self) -> str:
        return f"Symbol({self.name!r}, {self.type}, {self.kind})"


class Scope:
    """A lexical scope with a parent chain."""

    def __init__(self, parent: Optional["Scope"] = None, name: str = "") -> None:
        self.parent = parent
        self.name = name
        self.symbols: Dict[str, Symbol] = {}

    def declare(self, symbol: Symbol) -> None:
        if symbol.name in self.symbols:
            raise TypeError_(
                f"redeclaration of {symbol.name!r} in scope {self.name!r}")
        self.symbols[symbol.name] = symbol

    def lookup(self, name: str) -> Optional[Symbol]:
        scope: Optional[Scope] = self
        while scope is not None:
            if name in scope.symbols:
                return scope.symbols[name]
            scope = scope.parent
        return None

    def __contains__(self, name: str) -> bool:
        return self.lookup(name) is not None


@dataclass
class SymbolTable:
    """Binding results for a whole program."""

    program: Program
    globals: Scope
    # node_id of each Ident/Call use -> the Symbol it binds to.
    bindings: Dict[int, Symbol] = field(default_factory=dict)
    # function name -> its body scope (params + top-level locals merged in).
    function_scopes: Dict[str, Scope] = field(default_factory=dict)

    def symbol_of(self, node: Node) -> Symbol:
        try:
            return self.bindings[node.node_id]
        except KeyError:
            raise KeyError(f"node {node!r} has no binding") from None


class _Binder:
    def __init__(self, program: Program) -> None:
        self.program = program
        self.table = SymbolTable(program, Scope(name="<global>"))

    def run(self) -> SymbolTable:
        for decl in self.program.globals:
            symbol = Symbol(decl.name, decl.type, "global", decl, decl.const)
            self.table.globals.declare(symbol)
            if decl.init is not None:
                self._bind_expr(decl.init, self.table.globals)
        for func in self.program.functions:
            symbol = Symbol(func.name, func.return_type, "function", func)
            self.table.globals.declare(symbol)
        for func in self.program.functions:
            self._bind_function(func)
        return self.table

    def _bind_function(self, func: FuncDef) -> None:
        scope = Scope(self.table.globals, name=func.name)
        for param in func.params:
            scope.declare(Symbol(param.name, param.type, "param", param))
        self.table.function_scopes[func.name] = scope
        self._bind_block(func.body, scope)

    def _bind_block(self, block: Block, parent: Scope) -> None:
        scope = Scope(parent, name=f"block@{block.line}")
        for stmt in block.stmts:
            self._bind_stmt(stmt, scope)

    def _bind_stmt(self, stmt: Stmt, scope: Scope) -> None:
        if isinstance(stmt, Decl):
            if stmt.init is not None:
                self._bind_expr(stmt.init, scope)
            scope.declare(Symbol(stmt.name, stmt.type, "local", stmt,
                                 stmt.const))
        elif isinstance(stmt, Assign):
            self._bind_expr(stmt.target, scope)
            self._bind_expr(stmt.value, scope)
        elif isinstance(stmt, ExprStmt):
            self._bind_expr(stmt.expr, scope)
        elif isinstance(stmt, Block):
            self._bind_block(stmt, scope)
        elif isinstance(stmt, If):
            self._bind_expr(stmt.test, scope)
            self._bind_block(stmt.then, scope)
            if stmt.other is not None:
                self._bind_block(stmt.other, scope)
        elif isinstance(stmt, While):
            self._bind_expr(stmt.test, scope)
            self._bind_block(stmt.body, scope)
        elif isinstance(stmt, For):
            # The for-header introduces its own scope (C99 semantics).
            header = Scope(scope, name=f"for@{stmt.line}")
            if stmt.init is not None:
                self._bind_stmt(stmt.init, header)
            if stmt.test is not None:
                self._bind_expr(stmt.test, header)
            if stmt.step is not None:
                self._bind_stmt(stmt.step, header)
            self._bind_block(stmt.body, header)
        elif isinstance(stmt, Return):
            if stmt.value is not None:
                self._bind_expr(stmt.value, scope)
        # Break / Continue bind nothing.

    def _bind_expr(self, expr: Expr, scope: Scope) -> None:
        if isinstance(expr, Ident):
            symbol = scope.lookup(expr.name)
            if symbol is None:
                raise TypeError_(
                    f"use of undeclared identifier {expr.name!r} "
                    f"at {expr.line}:{expr.col}")
            self.table.bindings[expr.node_id] = symbol
        elif isinstance(expr, Call):
            symbol = scope.lookup(expr.name)
            # Calls to undeclared names are allowed: they are treated as
            # externals/intrinsics by the interpreter (e.g. abs, min, max).
            if symbol is not None:
                self.table.bindings[expr.node_id] = symbol
            for arg in expr.args:
                self._bind_expr(arg, scope)
        else:
            for child in expr.children():
                if isinstance(child, Expr):
                    self._bind_expr(child, scope)


def build_symbols(program: Program) -> SymbolTable:
    """Bind every identifier in ``program`` and return the symbol table."""
    return _Binder(program).run()


__all__ = ["Scope", "Symbol", "SymbolTable", "build_symbols"]
