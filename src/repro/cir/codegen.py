"""Code generator: mini-C AST back to C-like source text.

This is the "Code Generator" box of the Source Recoder (Figure 3): after
transformation tools mutate the AST, :func:`emit` regenerates the document
text.  It is also the final stage of the MAPS flow, which emits per-PE C
code for native compilation (Figure 1).

The emitter is deterministic and stable: emitting an unchanged AST twice
yields byte-identical text, which the recoder's synchronization tests rely
on (parse(emit(ast)) round-trips).
"""

from __future__ import annotations

from typing import List

from repro.cir.nodes import (
    ArrayIndex, Assign, BinOp, Block, Break, Call, Cond, Continue, Decl,
    Expr, ExprStmt, FloatLit, For, FuncDef, Ident, If, IntLit, Program, Return, Stmt, StringLit, UnaryOp, While,
)
from repro.cir.typesys import ArrayType, PointerType, Type

_INDENT = "    "

# Precedence for parenthesization decisions, mirroring the parser table.
_BIN_PREC = {
    "||": 1, "&&": 2, "|": 3, "^": 4, "&": 5, "==": 6, "!=": 6,
    "<": 7, ">": 7, "<=": 7, ">=": 7, "<<": 8, ">>": 8,
    "+": 9, "-": 9, "*": 10, "/": 10, "%": 10,
}
_UNARY_PREC = 11
_POSTFIX_PREC = 12


def emit_expression(expr: Expr, parent_prec: int = 0) -> str:
    """Render an expression, inserting parentheses only where required."""
    if isinstance(expr, IntLit):
        return str(expr.value)
    if isinstance(expr, FloatLit):
        text = repr(expr.value)
        return text if ("." in text or "e" in text or "inf" in text) else text + ".0"
    if isinstance(expr, StringLit):
        escaped = (expr.value.replace("\\", "\\\\").replace('"', '\\"')
                   .replace("\n", "\\n").replace("\t", "\\t"))
        return f'"{escaped}"'
    if isinstance(expr, Ident):
        return expr.name
    if isinstance(expr, ArrayIndex):
        base = emit_expression(expr.base, _POSTFIX_PREC)
        index = emit_expression(expr.index, 0)
        return f"{base}[{index}]"
    if isinstance(expr, Call):
        args = ", ".join(emit_expression(a, 0) for a in expr.args)
        return f"{expr.name}({args})"
    if isinstance(expr, UnaryOp):
        inner = emit_expression(expr.operand, _UNARY_PREC)
        # '--x' would lex as the decrement operator; keep '-(-x)' explicit.
        if inner.startswith(expr.op) and expr.op in ("-", "&", "*", "+"):
            inner = f"({inner})"
        text = f"{expr.op}{inner}"
        return f"({text})" if parent_prec > _UNARY_PREC else text
    if isinstance(expr, BinOp):
        prec = _BIN_PREC[expr.op]
        left = emit_expression(expr.left, prec)
        # Right operand of a left-associative operator needs parens at
        # equal precedence: a - (b - c).
        right = emit_expression(expr.right, prec + 1)
        text = f"{left} {expr.op} {right}"
        return f"({text})" if parent_prec > prec else text
    if isinstance(expr, Cond):
        test = emit_expression(expr.test, 1)
        then = emit_expression(expr.then, 0)
        other = emit_expression(expr.other, 0)
        text = f"{test} ? {then} : {other}"
        return f"({text})" if parent_prec > 0 else text
    raise TypeError(f"cannot emit expression node {expr!r}")


def _emit_declarator(dtype: Type, name: str) -> str:
    if isinstance(dtype, ArrayType):
        dims = "".join(f"[{d}]" for d in dtype.dims)
        return f"{dtype.element} {name}{dims}"
    if isinstance(dtype, PointerType):
        return f"{dtype.pointee} *{name}"
    return f"{dtype} {name}"


def _emit_stmt_inline(stmt: Stmt) -> str:
    """Render a simple statement without indentation or semicolon
    (for-header position)."""
    if isinstance(stmt, Assign):
        target = emit_expression(stmt.target)
        value = emit_expression(stmt.value)
        op = f"{stmt.op}=" if stmt.op else "="
        return f"{target} {op} {value}"
    if isinstance(stmt, ExprStmt):
        return emit_expression(stmt.expr)
    if isinstance(stmt, Decl):
        text = _emit_declarator(stmt.type, stmt.name)
        if stmt.const:
            text = "const " + text
        if stmt.init is not None:
            text += f" = {emit_expression(stmt.init)}"
        return text
    raise TypeError(f"statement {stmt!r} is not valid in a for-header")


class _Emitter:
    def __init__(self) -> None:
        self.lines: List[str] = []
        self.depth = 0

    def line(self, text: str) -> None:
        self.lines.append(_INDENT * self.depth + text if text else "")

    def emit_program(self, program: Program) -> None:
        for decl in program.globals:
            self.emit_stmt(decl)
        if program.globals and program.functions:
            self.line("")
        for i, func in enumerate(program.functions):
            if i:
                self.line("")
            self.emit_funcdef(func)

    def emit_funcdef(self, func: FuncDef) -> None:
        params = ", ".join(_emit_declarator(p.type, p.name)
                           for p in func.params)
        self.line(f"{func.return_type} {func.name}({params}) {{")
        self.depth += 1
        for stmt in func.body.stmts:
            self.emit_stmt(stmt)
        self.depth -= 1
        self.line("}")

    def emit_stmt(self, stmt: Stmt) -> None:
        if isinstance(stmt, (Assign, ExprStmt, Decl)):
            self.line(_emit_stmt_inline(stmt) + ";")
        elif isinstance(stmt, Block):
            self.line("{")
            self.depth += 1
            for inner in stmt.stmts:
                self.emit_stmt(inner)
            self.depth -= 1
            self.line("}")
        elif isinstance(stmt, If):
            self.line(f"if ({emit_expression(stmt.test)}) {{")
            self.depth += 1
            for inner in stmt.then.stmts:
                self.emit_stmt(inner)
            self.depth -= 1
            if stmt.other is not None:
                self.line("} else {")
                self.depth += 1
                for inner in stmt.other.stmts:
                    self.emit_stmt(inner)
                self.depth -= 1
            self.line("}")
        elif isinstance(stmt, While):
            self.line(f"while ({emit_expression(stmt.test)}) {{")
            self.depth += 1
            for inner in stmt.body.stmts:
                self.emit_stmt(inner)
            self.depth -= 1
            self.line("}")
        elif isinstance(stmt, For):
            init = _emit_stmt_inline(stmt.init) if stmt.init else ""
            test = emit_expression(stmt.test) if stmt.test else ""
            step = _emit_stmt_inline(stmt.step) if stmt.step else ""
            self.line(f"for ({init}; {test}; {step}) {{")
            self.depth += 1
            for inner in stmt.body.stmts:
                self.emit_stmt(inner)
            self.depth -= 1
            self.line("}")
        elif isinstance(stmt, Return):
            if stmt.value is None:
                self.line("return;")
            else:
                self.line(f"return {emit_expression(stmt.value)};")
        elif isinstance(stmt, Break):
            self.line("break;")
        elif isinstance(stmt, Continue):
            self.line("continue;")
        else:
            raise TypeError(f"cannot emit statement node {stmt!r}")


def emit(node) -> str:
    """Render a Program, FuncDef or Stmt as source text."""
    emitter = _Emitter()
    if isinstance(node, Program):
        emitter.emit_program(node)
    elif isinstance(node, FuncDef):
        emitter.emit_funcdef(node)
    elif isinstance(node, Stmt):
        emitter.emit_stmt(node)
    elif isinstance(node, Expr):
        return emit_expression(node)
    else:
        raise TypeError(f"cannot emit {node!r}")
    return "\n".join(emitter.lines) + "\n"


__all__ = ["emit", "emit_expression"]
