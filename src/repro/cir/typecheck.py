"""Static type checker for mini-C.

The interpreter tolerates a lot (it coerces); tools want diagnostics
*before* running, so the MAPS and HOPES front ends can reject broken input
with positions.  :func:`check_program` returns a list of
:class:`Diagnostic` (empty = clean); :func:`require_clean` raises.

Checked: undeclared names (via the binder), call arity against defined
functions, indexing of non-arrays, over-/under-indexing, non-integer
subscripts, assignment into arrays/consts, arithmetic on arrays, return
type presence, condition types, pointer arithmetic shapes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.cir.nodes import (
    ArrayIndex, Assign, BinOp, Block, Break, Call, Cond, Continue, Decl,
    Expr, ExprStmt, FloatLit, For, FuncDef, Ident, If, IntLit, Node,
    Program, Return, Stmt, StringLit, UnaryOp, While,
)
from repro.cir.symbols import SymbolTable, build_symbols
from repro.cir.typesys import (
    ArrayType, FLOAT, INT, PointerType, ScalarType, Type, TypeError_, VOID,
)

_INTRINSIC_ARITIES = {"print": None, "abs": 1, "min": None, "max": None,
                      "sqrt": 1, "floor": 1, "ceil": 1,
                      # Tool-runtime externals (any arity accepted):
                      "read_port": None, "write_port": None, "emit": None,
                      "ch_read": None, "ch_write": None}


@dataclass
class Diagnostic:
    """One type-check finding."""

    message: str
    line: int
    col: int
    severity: str = "error"  # 'error' | 'warning'

    def __repr__(self) -> str:
        return f"{self.severity} at {self.line}:{self.col}: {self.message}"


class TypeCheckError(TypeError_):
    """Raised by :func:`require_clean` when errors exist."""


class _Checker:
    def __init__(self, program: Program) -> None:
        self.program = program
        self.diagnostics: List[Diagnostic] = []
        try:
            self.table: Optional[SymbolTable] = build_symbols(program)
        except TypeError_ as error:
            self.table = None
            self.diagnostics.append(Diagnostic(str(error), 0, 0))
        self.functions: Dict[str, FuncDef] = {
            func.name: func for func in program.functions}
        self.current: Optional[FuncDef] = None

    def error(self, node: Node, message: str) -> None:
        self.diagnostics.append(Diagnostic(message, node.line, node.col))

    def warn(self, node: Node, message: str) -> None:
        self.diagnostics.append(Diagnostic(message, node.line, node.col,
                                           "warning"))

    # ------------------------------------------------------------------
    def run(self) -> List[Diagnostic]:
        if self.table is None:
            return self.diagnostics
        for decl in self.program.globals:
            if decl.init is not None:
                self.expr_type(decl.init)
        for func in self.program.functions:
            self.current = func
            self.check_block(func.body)
            if func.return_type != VOID and not self._always_returns(
                    func.body):
                self.warn(func, f"{func.name}() may fall off the end "
                                f"without returning {func.return_type}")
        return self.diagnostics

    def _always_returns(self, block: Block) -> bool:
        for stmt in block.stmts:
            if isinstance(stmt, Return):
                return True
            if isinstance(stmt, If) and stmt.other is not None:
                if self._always_returns(stmt.then) and \
                        self._always_returns(stmt.other):
                    return True
            if isinstance(stmt, Block) and self._always_returns(stmt):
                return True
        return False

    # ------------------------------------------------------------------
    def check_block(self, block: Block) -> None:
        for stmt in block.stmts:
            self.check_stmt(stmt)

    def check_stmt(self, stmt: Stmt) -> None:
        if isinstance(stmt, Decl):
            if stmt.init is not None:
                init_type = self.expr_type(stmt.init)
                if init_type is not None and stmt.type.is_scalar() and \
                        not init_type.is_scalar():
                    self.error(stmt, f"cannot initialize {stmt.type} "
                                     f"{stmt.name!r} from {init_type}")
        elif isinstance(stmt, Assign):
            self.check_assign(stmt)
        elif isinstance(stmt, ExprStmt):
            self.expr_type(stmt.expr)
        elif isinstance(stmt, Block):
            self.check_block(stmt)
        elif isinstance(stmt, If):
            self._check_condition(stmt.test)
            self.check_block(stmt.then)
            if stmt.other is not None:
                self.check_block(stmt.other)
        elif isinstance(stmt, While):
            self._check_condition(stmt.test)
            self.check_block(stmt.body)
        elif isinstance(stmt, For):
            if stmt.init is not None:
                self.check_stmt(stmt.init)
            if stmt.test is not None:
                self._check_condition(stmt.test)
            if stmt.step is not None:
                self.check_stmt(stmt.step)
            self.check_block(stmt.body)
        elif isinstance(stmt, Return):
            self.check_return(stmt)
        # Break/Continue: nothing to check.

    def _check_condition(self, test: Expr) -> None:
        test_type = self.expr_type(test)
        if test_type is not None and test_type.is_array():
            self.error(test, "array used as a condition")

    def check_assign(self, stmt: Assign) -> None:
        target_type = self.expr_type(stmt.target, lvalue=True)
        value_type = self.expr_type(stmt.value)
        if isinstance(stmt.target, Ident) and self.table is not None:
            symbol = self.table.bindings.get(stmt.target.node_id)
            if symbol is not None:
                if symbol.type.is_array():
                    self.error(stmt, f"cannot assign to array "
                                     f"{symbol.name!r}")
                if symbol.const:
                    self.error(stmt, f"assignment to const {symbol.name!r}")
                if symbol.kind == "function":
                    self.error(stmt, f"cannot assign to function "
                                     f"{symbol.name!r}")
        if target_type is not None and value_type is not None:
            if target_type.is_scalar() and value_type.is_array():
                self.error(stmt, f"cannot assign {value_type} to "
                                 f"{target_type}")
            if target_type.is_pointer() and value_type.is_scalar() and \
                    not isinstance(stmt.value, IntLit):
                self.warn(stmt, "scalar assigned to pointer")

    def check_return(self, stmt: Return) -> None:
        assert self.current is not None
        expected = self.current.return_type
        if stmt.value is None:
            if expected != VOID:
                self.error(stmt, f"return without a value in "
                                 f"{self.current.name}() returning "
                                 f"{expected}")
            return
        actual = self.expr_type(stmt.value)
        if expected == VOID:
            self.error(stmt, f"void {self.current.name}() returns a value")
        elif actual is not None and actual.is_array():
            self.error(stmt, "cannot return an array")

    # ------------------------------------------------------------------
    def expr_type(self, expr: Expr, lvalue: bool = False) -> Optional[Type]:
        if isinstance(expr, IntLit):
            return INT
        if isinstance(expr, FloatLit):
            return FLOAT
        if isinstance(expr, StringLit):
            return None  # strings only flow into print()
        if isinstance(expr, Ident):
            if self.table is None:
                return None
            symbol = self.table.bindings.get(expr.node_id)
            return symbol.type if symbol is not None else None
        if isinstance(expr, ArrayIndex):
            return self._index_type(expr)
        if isinstance(expr, Call):
            return self._call_type(expr)
        if isinstance(expr, UnaryOp):
            return self._unary_type(expr)
        if isinstance(expr, BinOp):
            return self._binop_type(expr)
        if isinstance(expr, Cond):
            self._check_condition(expr.test)
            then_type = self.expr_type(expr.then)
            other_type = self.expr_type(expr.other)
            return then_type or other_type
        return None

    def _index_type(self, expr: ArrayIndex) -> Optional[Type]:
        base_type = self.expr_type(expr.base)
        index_type = self.expr_type(expr.index)
        if index_type is not None and not index_type.is_scalar():
            self.error(expr.index, "array subscript must be scalar")
        if index_type == FLOAT:
            self.warn(expr.index, "float subscript truncated")
        if base_type is None:
            return None
        if isinstance(base_type, ArrayType):
            return base_type.inner()
        if isinstance(base_type, PointerType):
            return base_type.pointee
        self.error(expr, f"cannot index a value of type {base_type}")
        return None

    def _call_type(self, expr: Call) -> Optional[Type]:
        for arg in expr.args:
            self.expr_type(arg)
        func = self.functions.get(expr.name)
        if func is not None:
            if len(expr.args) != len(func.params):
                self.error(expr, f"{expr.name}() expects "
                                 f"{len(func.params)} argument(s), got "
                                 f"{len(expr.args)}")
            else:
                for param, arg in zip(func.params, expr.args):
                    arg_type = self.expr_type(arg)
                    if arg_type is None:
                        continue
                    if param.type.is_array() and not arg_type.is_array():
                        self.error(arg, f"argument for {param.name!r} "
                                        f"must be an array")
                    if param.type.is_scalar() and arg_type.is_array():
                        self.error(arg, f"array passed for scalar "
                                        f"parameter {param.name!r}")
            return func.return_type
        if expr.name in _INTRINSIC_ARITIES:
            arity = _INTRINSIC_ARITIES[expr.name]
            if arity is not None and len(expr.args) != arity:
                self.error(expr, f"{expr.name}() expects {arity} "
                                 f"argument(s)")
            return INT
        self.warn(expr, f"call to external function {expr.name!r}")
        return None

    def _unary_type(self, expr: UnaryOp) -> Optional[Type]:
        operand_type = self.expr_type(expr.operand)
        if expr.op == "&":
            if isinstance(operand_type, ScalarType):
                return PointerType(operand_type)
            if isinstance(operand_type, ArrayType):
                return PointerType(operand_type.element)
            return None
        if expr.op == "*":
            if isinstance(operand_type, PointerType):
                return operand_type.pointee
            if operand_type is not None:
                self.error(expr, f"cannot dereference {operand_type}")
            return None
        if operand_type is not None and operand_type.is_array():
            self.error(expr, f"unary {expr.op!r} on an array")
        if expr.op in ("!", "~"):
            return INT
        return operand_type

    def _binop_type(self, expr: BinOp) -> Optional[Type]:
        left = self.expr_type(expr.left)
        right = self.expr_type(expr.right)
        for side, side_type in (("left", left), ("right", right)):
            if side_type is not None and side_type.is_array():
                self.error(expr, f"{side} operand of {expr.op!r} is an "
                                 f"array")
                return None
        if expr.op in ("==", "!=", "<", ">", "<=", ">=", "&&", "||"):
            return INT
        # Pointer arithmetic.
        if isinstance(left, PointerType) and expr.op in ("+", "-"):
            if right == FLOAT:
                self.error(expr, "pointer offset must be an integer")
            return left
        if isinstance(right, PointerType) and expr.op == "+":
            return right
        if isinstance(right, PointerType) or isinstance(left, PointerType):
            self.error(expr, f"invalid pointer operation {expr.op!r}")
            return None
        if expr.op in ("%", "<<", ">>", "&", "|", "^"):
            if FLOAT in (left, right):
                self.error(expr, f"float operand to integer operator "
                                 f"{expr.op!r}")
            return INT
        if FLOAT in (left, right):
            return FLOAT
        if left is None and right is None:
            return None
        return INT


def check_program(program: Program) -> List[Diagnostic]:
    """Type-check a program; returns diagnostics (possibly warnings only)."""
    return _Checker(program).run()


def require_clean(program: Program) -> None:
    """Raise :class:`TypeCheckError` if the program has any *errors*."""
    errors = [d for d in check_program(program) if d.severity == "error"]
    if errors:
        raise TypeCheckError("; ".join(str(d) for d in errors[:5]))


__all__ = ["Diagnostic", "TypeCheckError", "check_program", "require_clean"]
