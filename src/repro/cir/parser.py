"""Recursive-descent parser for mini-C."""

from __future__ import annotations

from typing import List, Optional

from repro.cir.lexer import Token, tokenize
from repro.cir.nodes import (
    ArrayIndex, Assign, BinOp, Block, Break, Call, Cond, Continue, Decl,
    Expr, ExprStmt, FloatLit, For, FuncDef, Ident, If, IntLit, Param,
    Program, Return, Stmt, StringLit, UnaryOp, While,
)
from repro.cir.typesys import ArrayType, PointerType, ScalarType, Type, scalar

COMPOUND_ASSIGN = {"+=": "+", "-=": "-", "*=": "*", "/=": "/", "%=": "%",
                   "<<=": "<<", ">>=": ">>"}

# Binary operator precedence, low to high.  Each level is left-associative.
_PRECEDENCE: List[List[str]] = [
    ["||"],
    ["&&"],
    ["|"],
    ["^"],
    ["&"],
    ["==", "!="],
    ["<", ">", "<=", ">="],
    ["<<", ">>"],
    ["+", "-"],
    ["*", "/", "%"],
]


class ParseError(Exception):
    """Raised on a syntax error, with source position."""

    def __init__(self, message: str, token: Token) -> None:
        super().__init__(f"{message} at {token.line}:{token.col} "
                         f"(near {token.text!r})")
        self.token = token


class _Parser:
    def __init__(self, tokens: List[Token]) -> None:
        self.tokens = tokens
        self.pos = 0

    # -- token helpers --------------------------------------------------
    @property
    def current(self) -> Token:
        return self.tokens[self.pos]

    def peek(self, offset: int = 1) -> Token:
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def advance(self) -> Token:
        token = self.current
        if token.kind != "eof":
            self.pos += 1
        return token

    def check(self, kind: str, text: Optional[str] = None) -> bool:
        token = self.current
        return token.kind == kind and (text is None or token.text == text)

    def accept(self, kind: str, text: Optional[str] = None) -> Optional[Token]:
        if self.check(kind, text):
            return self.advance()
        return None

    def expect(self, kind: str, text: Optional[str] = None) -> Token:
        if not self.check(kind, text):
            want = text or kind
            raise ParseError(f"expected {want!r}", self.current)
        return self.advance()

    def _pos_of(self, token: Token) -> dict:
        return {"line": token.line, "col": token.col}

    # -- program --------------------------------------------------------
    def parse_program(self) -> Program:
        start = self.current
        program = Program(**self._pos_of(start))
        while not self.check("eof"):
            if not self._at_type():
                raise ParseError("expected type at top level", self.current)
            # Look ahead: type [*] ident '(' => function, otherwise global.
            offset = 1
            if self.peek(offset).kind == "op" and self.peek(offset).text == "*":
                offset += 1
            if (self.peek(offset).kind == "ident"
                    and self.peek(offset + 1).text == "("):
                program.functions.append(self.parse_funcdef())
            else:
                program.globals.append(self.parse_decl())
        return program

    def _at_type(self) -> bool:
        return (self.check("keyword") and
                self.current.text in ("int", "float", "void", "const"))

    def parse_type_prefix(self) -> ScalarType:
        token = self.expect("keyword")
        if token.text not in ("int", "float", "void"):
            raise ParseError("expected a type name", token)
        return scalar(token.text)

    def parse_funcdef(self) -> FuncDef:
        start = self.current
        base = self.parse_type_prefix()
        return_type: Type = base
        if self.accept("op", "*"):
            return_type = PointerType(base)
        name = self.expect("ident").text
        self.expect("op", "(")
        params: List[Param] = []
        if not self.check("op", ")"):
            while True:
                params.append(self.parse_param())
                if not self.accept("op", ","):
                    break
        self.expect("op", ")")
        body = self.parse_block()
        return FuncDef(return_type=return_type, name=name, params=params,
                       body=body, **self._pos_of(start))

    def parse_param(self) -> Param:
        start = self.current
        base = self.parse_type_prefix()
        ptype: Type = base
        if self.accept("op", "*"):
            ptype = PointerType(base)
        name = self.expect("ident").text
        dims: List[int] = []
        while self.accept("op", "["):
            dims.append(int(self.expect("int").text))
            self.expect("op", "]")
        if dims:
            ptype = ArrayType(base, tuple(dims))
        return Param(type=ptype, name=name, **self._pos_of(start))

    # -- statements -------------------------------------------------------
    def parse_block(self) -> Block:
        start = self.expect("op", "{")
        block = Block(**self._pos_of(start))
        while not self.check("op", "}"):
            if self.check("eof"):
                raise ParseError("unterminated block", self.current)
            block.stmts.append(self.parse_statement())
        self.expect("op", "}")
        return block

    def parse_statement(self) -> Stmt:
        token = self.current
        if self.check("op", "{"):
            return self.parse_block()
        if self.check("keyword", "if"):
            return self.parse_if()
        if self.check("keyword", "while"):
            return self.parse_while()
        if self.check("keyword", "for"):
            return self.parse_for()
        if self.check("keyword", "return"):
            self.advance()
            value = None
            if not self.check("op", ";"):
                value = self.parse_expression()
            self.expect("op", ";")
            return Return(value=value, **self._pos_of(token))
        if self.check("keyword", "break"):
            self.advance()
            self.expect("op", ";")
            return Break(**self._pos_of(token))
        if self.check("keyword", "continue"):
            self.advance()
            self.expect("op", ";")
            return Continue(**self._pos_of(token))
        if self._at_type():
            return self.parse_decl()
        stmt = self.parse_simple_statement()
        self.expect("op", ";")
        return stmt

    def parse_decl(self) -> Decl:
        start = self.current
        const = bool(self.accept("keyword", "const"))
        base = self.parse_type_prefix()
        dtype: Type = base
        if self.accept("op", "*"):
            dtype = PointerType(base)
        name = self.expect("ident").text
        dims: List[int] = []
        while self.accept("op", "["):
            dims.append(int(self.expect("int").text))
            self.expect("op", "]")
        if dims:
            if dtype.is_pointer():
                raise ParseError("array of pointers is unsupported", start)
            dtype = ArrayType(base, tuple(dims))
        init = None
        if self.accept("op", "="):
            init = self.parse_expression()
        self.expect("op", ";")
        return Decl(type=dtype, name=name, init=init, const=const,
                    **self._pos_of(start))

    def parse_simple_statement(self) -> Stmt:
        """An assignment, increment/decrement, or expression statement
        (no trailing semicolon -- usable in for-headers)."""
        start = self.current
        expr = self.parse_expression()
        if self.check("op") and self.current.text in ({"="} | set(COMPOUND_ASSIGN)):
            op_token = self.advance()
            value = self.parse_expression()
            op = COMPOUND_ASSIGN.get(op_token.text, "")
            return Assign(target=expr, value=value, op=op,
                          **self._pos_of(start))
        if self.check("op", "++") or self.check("op", "--"):
            op_token = self.advance()
            one = IntLit(value=1, **self._pos_of(op_token))
            op = "+" if op_token.text == "++" else "-"
            return Assign(target=expr, value=one, op=op, **self._pos_of(start))
        return ExprStmt(expr=expr, **self._pos_of(start))

    def parse_if(self) -> If:
        start = self.expect("keyword", "if")
        self.expect("op", "(")
        test = self.parse_expression()
        self.expect("op", ")")
        then = self._statement_as_block()
        other = None
        if self.accept("keyword", "else"):
            other = self._statement_as_block()
        return If(test=test, then=then, other=other, **self._pos_of(start))

    def parse_while(self) -> While:
        start = self.expect("keyword", "while")
        self.expect("op", "(")
        test = self.parse_expression()
        self.expect("op", ")")
        body = self._statement_as_block()
        return While(test=test, body=body, **self._pos_of(start))

    def parse_for(self) -> For:
        start = self.expect("keyword", "for")
        self.expect("op", "(")
        init: Optional[Stmt] = None
        if not self.check("op", ";"):
            if self._at_type():
                # Declaration in for-init consumes its own semicolon.
                init = self.parse_decl()
            else:
                init = self.parse_simple_statement()
                self.expect("op", ";")
        else:
            self.expect("op", ";")
        test: Optional[Expr] = None
        if not self.check("op", ";"):
            test = self.parse_expression()
        self.expect("op", ";")
        step: Optional[Stmt] = None
        if not self.check("op", ")"):
            step = self.parse_simple_statement()
        self.expect("op", ")")
        body = self._statement_as_block()
        return For(init=init, test=test, step=step, body=body,
                   **self._pos_of(start))

    def _statement_as_block(self) -> Block:
        """Wrap a single statement into a Block so bodies are uniform."""
        if self.check("op", "{"):
            return self.parse_block()
        stmt = self.parse_statement()
        return Block(stmts=[stmt], line=stmt.line, col=stmt.col)

    # -- expressions ------------------------------------------------------
    def parse_expression(self) -> Expr:
        return self.parse_ternary()

    def parse_ternary(self) -> Expr:
        test = self.parse_binary(0)
        if self.accept("op", "?"):
            then = self.parse_expression()
            self.expect("op", ":")
            other = self.parse_ternary()
            return Cond(test=test, then=then, other=other,
                        line=test.line, col=test.col)
        return test

    def parse_binary(self, level: int) -> Expr:
        if level >= len(_PRECEDENCE):
            return self.parse_unary()
        left = self.parse_binary(level + 1)
        ops = _PRECEDENCE[level]
        while self.check("op") and self.current.text in ops:
            op_token = self.advance()
            right = self.parse_binary(level + 1)
            left = BinOp(op=op_token.text, left=left, right=right,
                         **self._pos_of(op_token))
        return left

    def parse_unary(self) -> Expr:
        token = self.current
        if self.check("op") and token.text in ("-", "!", "~", "*", "&", "+"):
            self.advance()
            operand = self.parse_unary()
            if token.text == "+":
                return operand
            return UnaryOp(op=token.text, operand=operand,
                           **self._pos_of(token))
        return self.parse_postfix()

    def parse_postfix(self) -> Expr:
        expr = self.parse_primary()
        while True:
            if self.check("op", "["):
                bracket = self.advance()
                index = self.parse_expression()
                self.expect("op", "]")
                expr = ArrayIndex(base=expr, index=index,
                                  **self._pos_of(bracket))
            else:
                break
        return expr

    def parse_primary(self) -> Expr:
        token = self.current
        if self.check("int"):
            self.advance()
            return IntLit(value=int(token.text), **self._pos_of(token))
        if self.check("float"):
            self.advance()
            return FloatLit(value=float(token.text), **self._pos_of(token))
        if self.check("string"):
            self.advance()
            return StringLit(value=token.text, **self._pos_of(token))
        if self.check("ident"):
            self.advance()
            if self.check("op", "("):
                self.advance()
                args: List[Expr] = []
                if not self.check("op", ")"):
                    while True:
                        args.append(self.parse_expression())
                        if not self.accept("op", ","):
                            break
                self.expect("op", ")")
                return Call(name=token.text, args=args, **self._pos_of(token))
            return Ident(name=token.text, **self._pos_of(token))
        if self.accept("op", "("):
            expr = self.parse_expression()
            self.expect("op", ")")
            return expr
        raise ParseError("expected an expression", token)


def parse(source: str) -> Program:
    """Parse mini-C source text into a :class:`Program` AST."""
    parser = _Parser(tokenize(source))
    program = parser.parse_program()
    return program


def parse_expression(source: str) -> Expr:
    """Parse a standalone expression (used by tests and the recoder)."""
    parser = _Parser(tokenize(source))
    expr = parser.parse_expression()
    parser.expect("eof")
    return expr


def parse_statement(source: str) -> Stmt:
    """Parse a standalone statement (used by the recoder's edit-apply path)."""
    parser = _Parser(tokenize(source))
    stmt = parser.parse_statement()
    parser.expect("eof")
    return stmt


__all__ = ["ParseError", "parse", "parse_expression", "parse_statement"]
