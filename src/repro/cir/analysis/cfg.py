"""Control-flow graph construction for mini-C functions.

The CFG is built at statement granularity: each simple statement (Decl,
Assign, ExprStmt, Return) and each branch test (If/While/For condition)
becomes one node.  Entry and exit are synthetic nodes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.cir.nodes import (
    Assign, Block, Break, Continue, Decl, Expr, ExprStmt, For, FuncDef, If,
    Node, Return, Stmt, While,
)


@dataclass
class CFGNode:
    """One node of the control-flow graph."""

    nid: int
    kind: str  # 'entry' | 'exit' | 'stmt' | 'branch'
    stmt: Optional[Stmt] = None      # for 'stmt' nodes
    test: Optional[Expr] = None      # for 'branch' nodes
    succs: List[int] = field(default_factory=list)
    preds: List[int] = field(default_factory=list)
    label: str = ""

    def __repr__(self) -> str:
        return f"CFGNode({self.nid}, {self.kind}, {self.label!r})"


class CFG:
    """A per-function control-flow graph."""

    def __init__(self, func_name: str) -> None:
        self.func_name = func_name
        self.nodes: Dict[int, CFGNode] = {}
        self._next = 0
        self.entry = self._new("entry", label="ENTRY")
        self.exit = self._new("exit", label="EXIT")

    def _new(self, kind: str, stmt: Optional[Stmt] = None,
             test: Optional[Expr] = None, label: str = "") -> CFGNode:
        node = CFGNode(self._next, kind, stmt=stmt, test=test, label=label)
        self.nodes[node.nid] = node
        self._next += 1
        return node

    def add_edge(self, src: CFGNode, dst: CFGNode) -> None:
        if dst.nid not in src.succs:
            src.succs.append(dst.nid)
        if src.nid not in dst.preds:
            dst.preds.append(src.nid)

    def node(self, nid: int) -> CFGNode:
        return self.nodes[nid]

    def stmt_nodes(self) -> List[CFGNode]:
        return [n for n in self.nodes.values() if n.kind == "stmt"]

    def reachable(self) -> Set[int]:
        """Node ids reachable from entry."""
        seen: Set[int] = set()
        stack = [self.entry.nid]
        while stack:
            nid = stack.pop()
            if nid in seen:
                continue
            seen.add(nid)
            stack.extend(self.nodes[nid].succs)
        return seen

    def __len__(self) -> int:
        return len(self.nodes)


class _Builder:
    def __init__(self, func: FuncDef) -> None:
        self.func = func
        self.cfg = CFG(func.name)
        # (break_target, continue_target) stacks for loop nesting.
        self.loop_stack: List[tuple] = []

    def build(self) -> CFG:
        tails = self._build_block(self.func.body, [self.cfg.entry])
        for tail in tails:
            self.cfg.add_edge(tail, self.cfg.exit)
        return self.cfg

    def _connect_all(self, sources: List[CFGNode], target: CFGNode) -> None:
        for source in sources:
            self.cfg.add_edge(source, target)

    def _build_block(self, block: Block,
                     preds: List[CFGNode]) -> List[CFGNode]:
        """Wire a block after ``preds``; return the dangling tail nodes."""
        current = preds
        for stmt in block.stmts:
            if not current:
                break  # unreachable code after return/break/continue
            current = self._build_stmt(stmt, current)
        return current

    def _build_stmt(self, stmt: Stmt,
                    preds: List[CFGNode]) -> List[CFGNode]:
        cfg = self.cfg
        if isinstance(stmt, (Decl, Assign, ExprStmt)):
            node = cfg._new("stmt", stmt=stmt, label=type(stmt).__name__)
            self._connect_all(preds, node)
            return [node]
        if isinstance(stmt, Return):
            node = cfg._new("stmt", stmt=stmt, label="Return")
            self._connect_all(preds, node)
            cfg.add_edge(node, cfg.exit)
            return []
        if isinstance(stmt, Break):
            node = cfg._new("stmt", stmt=stmt, label="Break")
            self._connect_all(preds, node)
            if not self.loop_stack:
                raise ValueError("break outside a loop")
            self.loop_stack[-1][0].append(node)
            return []
        if isinstance(stmt, Continue):
            node = cfg._new("stmt", stmt=stmt, label="Continue")
            self._connect_all(preds, node)
            if not self.loop_stack:
                raise ValueError("continue outside a loop")
            self.loop_stack[-1][1].append(node)
            return []
        if isinstance(stmt, Block):
            return self._build_block(stmt, preds)
        if isinstance(stmt, If):
            branch = cfg._new("branch", test=stmt.test, label="if")
            self._connect_all(preds, branch)
            then_tails = self._build_block(stmt.then, [branch])
            if stmt.other is not None:
                else_tails = self._build_block(stmt.other, [branch])
            else:
                else_tails = [branch]
            return then_tails + else_tails
        if isinstance(stmt, While):
            branch = cfg._new("branch", test=stmt.test, label="while")
            self._connect_all(preds, branch)
            breaks: List[CFGNode] = []
            continues: List[CFGNode] = []
            self.loop_stack.append((breaks, continues))
            body_tails = self._build_block(stmt.body, [branch])
            self.loop_stack.pop()
            for tail in body_tails + continues:
                cfg.add_edge(tail, branch)
            return [branch] + breaks
        if isinstance(stmt, For):
            current = preds
            if stmt.init is not None:
                current = self._build_stmt(stmt.init, current)
            branch = cfg._new("branch", test=stmt.test, label="for")
            self._connect_all(current, branch)
            breaks, continues = [], []
            self.loop_stack.append((breaks, continues))
            body_tails = self._build_block(stmt.body, [branch])
            self.loop_stack.pop()
            step_entry: List[CFGNode] = body_tails + continues
            if stmt.step is not None and step_entry:
                step_tails = self._build_stmt(stmt.step, step_entry)
            else:
                step_tails = step_entry
            for tail in step_tails:
                cfg.add_edge(tail, branch)
            return [branch] + breaks
        raise TypeError(f"cannot build CFG for {stmt!r}")


def build_cfg(func: FuncDef) -> CFG:
    """Build the control-flow graph of a function."""
    return _Builder(func).build()


__all__ = ["CFG", "CFGNode", "build_cfg"]
