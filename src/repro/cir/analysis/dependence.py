"""Loop dependence analysis and parallelizability classification.

This implements the analysis MAPS needs to decide whether a loop can be
split across processing elements (section IV), and the analysis the Source
Recoder's "analyze shared data accesses" transformation runs before a loop
split (section VI).

The test suite is a classical single-index-variable (SIV) framework:

- subscripts are reduced to affine form ``c * i + k`` in the loop variable
  ``i`` (with ``k`` possibly symbolic in loop-invariant names);
- pairs of accesses to the same array are compared with ZIV/strong-SIV
  tests;
- anything non-affine is conservatively assumed dependent.

Scalars are classified as private (defined before use in every iteration),
reduction (``s = s op expr`` with an associative op), or carried (true
cross-iteration dependence).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Set, Tuple

from repro.cir.analysis.dataflow import expr_uses, stmt_defs, stmt_strong_defs, stmt_uses
from repro.cir.nodes import (
    ArrayIndex, Assign, BinOp, Block, Call, Decl, Expr, ExprStmt, For, Ident,
    IntLit, Stmt, UnaryOp, )

REDUCTION_OPS = {"+", "*", "|", "&", "^"}


# ---------------------------------------------------------------------------
# affine form: coeff * loopvar + (intercept, symbolic terms)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Affine:
    """``coeff * i + const`` with a canonical tuple of symbolic addends.

    ``symbols`` is a sorted tuple of (name, multiplier) pairs for
    loop-invariant identifiers appearing additively, so ``i + base`` and
    ``base + i`` compare equal.
    """

    coeff: int
    const: int
    symbols: Tuple[Tuple[str, int], ...] = ()

    def plus(self, other: "Affine") -> "Affine":
        return Affine(self.coeff + other.coeff, self.const + other.const,
                      _merge_symbols(self.symbols, other.symbols, 1))

    def minus(self, other: "Affine") -> "Affine":
        return Affine(self.coeff - other.coeff, self.const - other.const,
                      _merge_symbols(self.symbols, other.symbols, -1))

    def times_const(self, k: int) -> "Affine":
        return Affine(self.coeff * k, self.const * k,
                      tuple((n, m * k) for n, m in self.symbols if m * k != 0))


def _merge_symbols(a: Tuple[Tuple[str, int], ...],
                   b: Tuple[Tuple[str, int], ...],
                   sign: int) -> Tuple[Tuple[str, int], ...]:
    table: Dict[str, int] = {}
    for name, mult in a:
        table[name] = table.get(name, 0) + mult
    for name, mult in b:
        table[name] = table.get(name, 0) + sign * mult
    return tuple(sorted((n, m) for n, m in table.items() if m != 0))


def affine_of(expr: Expr, loop_var: str,
              invariants: Set[str]) -> Optional[Affine]:
    """Reduce ``expr`` to affine form in ``loop_var``; None if non-affine."""
    if isinstance(expr, IntLit):
        return Affine(0, expr.value)
    if isinstance(expr, Ident):
        if expr.name == loop_var:
            return Affine(1, 0)
        if expr.name in invariants:
            return Affine(0, 0, ((expr.name, 1),))
        return None
    if isinstance(expr, UnaryOp) and expr.op == "-":
        inner = affine_of(expr.operand, loop_var, invariants)
        return inner.times_const(-1) if inner is not None else None
    if isinstance(expr, BinOp):
        left = affine_of(expr.left, loop_var, invariants)
        right = affine_of(expr.right, loop_var, invariants)
        if expr.op == "+" and left is not None and right is not None:
            return left.plus(right)
        if expr.op == "-" and left is not None and right is not None:
            return left.minus(right)
        if expr.op == "*":
            # One side must be a pure integer constant.
            if (left is not None and left.coeff == 0 and not left.symbols
                    and right is not None):
                return right.times_const(left.const)
            if (right is not None and right.coeff == 0 and not right.symbols
                    and left is not None):
                return left.times_const(right.const)
        return None
    return None


# ---------------------------------------------------------------------------
# access collection
# ---------------------------------------------------------------------------

@dataclass
class AccessInfo:
    """One array access inside a loop body."""

    array: str
    indices: List[Expr]
    is_write: bool
    stmt: Stmt
    node: ArrayIndex

    def __repr__(self) -> str:
        mode = "W" if self.is_write else "R"
        return f"Access({mode} {self.array}, stmt@{self.stmt.line})"


def collect_array_accesses(body: Block) -> List[AccessInfo]:
    """Collect all array reads/writes (including in nested statements)."""
    accesses: List[AccessInfo] = []

    def visit_expr(expr: Expr, stmt: Stmt, writing: bool) -> None:
        if isinstance(expr, ArrayIndex):
            root = expr.root_ident()
            if root is not None:
                accesses.append(AccessInfo(root.name, expr.index_chain(),
                                           writing, stmt, expr))
            for index in expr.index_chain():
                visit_expr(index, stmt, False)
            return
        for child in expr.children():
            if isinstance(child, Expr):
                visit_expr(child, stmt, False)

    def visit_stmt(stmt: Stmt) -> None:
        if isinstance(stmt, Assign):
            visit_expr(stmt.target, stmt, True)
            if stmt.op:  # compound assignment also reads the target
                visit_expr(stmt.target, stmt, False)
            visit_expr(stmt.value, stmt, False)
        elif isinstance(stmt, Decl) and stmt.init is not None:
            visit_expr(stmt.init, stmt, False)
        elif isinstance(stmt, ExprStmt):
            visit_expr(stmt.expr, stmt, False)
        else:
            for child in stmt.children():
                if isinstance(child, Stmt):
                    visit_stmt(child)
                elif isinstance(child, Expr):
                    visit_expr(child, stmt, False)

    for stmt in body.stmts:
        visit_stmt(stmt)
    return accesses


# ---------------------------------------------------------------------------
# dependence testing
# ---------------------------------------------------------------------------

@dataclass
class Dependence:
    """A (possible) data dependence between two accesses."""

    kind: str  # 'flow' | 'anti' | 'output'
    array: str
    source: AccessInfo
    sink: AccessInfo
    distance: Optional[int]  # iteration distance if known, None if unknown
    loop_carried: bool
    reason: str = ""

    def __repr__(self) -> str:
        carried = "carried" if self.loop_carried else "independent"
        return (f"Dependence({self.kind}, {self.array}, d={self.distance}, "
                f"{carried}: {self.reason})")


def _test_pair(first: AccessInfo, second: AccessInfo, loop_var: str,
               invariants: Set[str]) -> Optional[Tuple[Optional[int], str]]:
    """SIV/ZIV test.  Returns (distance, reason) if dependent across
    iterations may exist, or None if proven independent.  distance None
    means 'unknown distance'."""
    if len(first.indices) != len(second.indices):
        return None, "rank mismatch treated as may-alias"
    distance: Optional[int] = 0
    for a_expr, b_expr in zip(first.indices, second.indices):
        a = affine_of(a_expr, loop_var, invariants)
        b = affine_of(b_expr, loop_var, invariants)
        if a is None or b is None:
            return None, "non-affine subscript"
        if a.symbols != b.symbols:
            # Different symbolic bases: cannot prove anything -> assume dep.
            return None, "differing symbolic offsets"
        if a.coeff == b.coeff:
            if a.coeff == 0:
                # ZIV: both constant in i.
                if a.const == b.const:
                    distance = _combine_distance(distance, 0)
                    continue
                return None  # proven independent in this dimension
            delta = b.const - a.const
            if delta % a.coeff != 0:
                return None  # no integer solution -> independent
            distance = _combine_distance(distance, -(delta // a.coeff))
            continue
        # coeff differs (weak SIV) -- a single crossing may exist; be
        # conservative but note it.
        return None, "weak-SIV (single crossing assumed dependent)"
    if distance == 0:
        return 0, "same element every iteration" if any(
            affine_of(e, loop_var, invariants) is not None and
            affine_of(e, loop_var, invariants).coeff == 0
            for e in first.indices) else "loop-independent"
    return distance, "constant dependence distance"


def _combine_distance(current: Optional[int],
                      new: int) -> Optional[int]:
    if current is None:
        return None
    if current == 0:
        return new
    if new == 0 or new == current:
        return current
    return None


class LoopClass(Enum):
    """Parallelizability verdict for a loop."""

    DOALL = "doall"              # iterations fully independent
    REDUCTION = "reduction"      # independent except associative reductions
    SEQUENTIAL = "sequential"    # loop-carried dependence

    def parallelizable(self) -> bool:
        return self is not LoopClass.SEQUENTIAL


@dataclass
class LoopInfo:
    """Full analysis result for one counted loop."""

    loop: For
    loop_var: str
    lower: Optional[Expr]
    upper: Optional[Expr]
    step: int
    classification: LoopClass
    dependences: List[Dependence] = field(default_factory=list)
    reductions: Dict[str, str] = field(default_factory=dict)  # var -> op
    private_scalars: Set[str] = field(default_factory=set)
    carried_scalars: Set[str] = field(default_factory=set)
    reasons: List[str] = field(default_factory=list)


def _extract_counted_header(loop: For) -> Optional[Tuple[str, Optional[Expr],
                                                         Optional[Expr], int]]:
    """Recognize ``for (i = L; i < U; i += s)`` shapes.

    Returns (var, lower, upper, step) or None if the loop is not counted.
    """
    init = loop.init
    var: Optional[str] = None
    lower: Optional[Expr] = None
    if isinstance(init, Assign) and isinstance(init.target, Ident) and not init.op:
        var = init.target.name
        lower = init.value
    elif isinstance(init, Decl):
        var = init.name
        lower = init.init
    if var is None:
        return None
    upper: Optional[Expr] = None
    if isinstance(loop.test, BinOp) and loop.test.op in ("<", "<=", ">", ">="):
        left, right = loop.test.left, loop.test.right
        if isinstance(left, Ident) and left.name == var:
            upper = right
        elif isinstance(right, Ident) and right.name == var:
            upper = left
        else:
            return None
    step = 0
    if isinstance(loop.step, Assign) and isinstance(loop.step.target, Ident) \
            and loop.step.target.name == var:
        if loop.step.op in ("+", "-") and isinstance(loop.step.value, IntLit):
            step = loop.step.value.value
            if loop.step.op == "-":
                step = -step
        elif not loop.step.op and isinstance(loop.step.value, BinOp):
            # i = i + c / i = i - c
            binop = loop.step.value
            if (binop.op in ("+", "-") and isinstance(binop.left, Ident)
                    and binop.left.name == var
                    and isinstance(binop.right, IntLit)):
                step = binop.right.value if binop.op == "+" else -binop.right.value
    if step == 0:
        return None
    return var, lower, upper, step


def _body_writes_var(body: Block, var: str) -> bool:
    for stmt in body.stmts:
        for node in stmt.walk():
            if isinstance(node, (Assign,)) and isinstance(node.target, Ident) \
                    and node.target.name == var:
                return True
            if isinstance(node, Decl) and node.name == var:
                return True
    return False


def _scalar_analysis(body: Block, loop_var: str) \
        -> Tuple[Set[str], Dict[str, str], Set[str]]:
    """Classify scalars written in the body: (private, reductions, carried)."""
    private: Set[str] = set()
    reductions: Dict[str, str] = {}
    carried: Set[str] = set()

    written: List[Assign] = []
    declared: Set[str] = set()
    for stmt in body.stmts:
        for node in stmt.walk():
            if isinstance(node, Assign) and isinstance(node.target, Ident):
                written.append(node)
            if isinstance(node, Decl):
                declared.add(node.name)

    # Count reads of each scalar outside its own reduction statements.
    for assign in written:
        name = assign.target.name  # type: ignore[union-attr]
        if name == loop_var:
            continue
        if name in declared:
            private.add(name)
            continue
        if _is_reduction_assign(assign, name):
            other_reads = _reads_elsewhere(body, name, exclude=assign)
            if not other_reads:
                op = assign.op or assign.value.op  # type: ignore[union-attr]
                existing = reductions.get(name)
                if existing is None or existing == op:
                    reductions[name] = op
                    continue
            carried.add(name)
            reductions.pop(name, None)
            continue
        # Written before any read in straight-line top-level code -> private.
        if _defined_before_use(body, name):
            private.add(name)
        else:
            carried.add(name)
    for name in carried:
        reductions.pop(name, None)
    return private, reductions, carried


def _is_reduction_assign(assign: Assign, name: str) -> bool:
    if assign.op in REDUCTION_OPS:
        return not _expr_reads(assign.value, name)
    if not assign.op and isinstance(assign.value, BinOp) \
            and assign.value.op in REDUCTION_OPS:
        binop = assign.value
        if isinstance(binop.left, Ident) and binop.left.name == name:
            return not _expr_reads(binop.right, name)
        if isinstance(binop.right, Ident) and binop.right.name == name \
                and binop.op in ("+", "*"):
            return not _expr_reads(binop.left, name)
    return False


def _expr_reads(expr: Expr, name: str) -> bool:
    return name in expr_uses(expr)


def _reads_elsewhere(body: Block, name: str, exclude: Assign) -> bool:
    for stmt in body.stmts:
        for node in stmt.walk():
            if node is exclude:
                continue
            if isinstance(node, Assign):
                if node is not exclude and name in stmt_uses(node):
                    return True
            elif isinstance(node, (Decl, ExprStmt)):
                if name in stmt_uses(node):
                    return True
    return False


def _defined_before_use(body: Block, name: str) -> bool:
    """True if, scanning top-level statements, a strong def of ``name``
    appears before any use."""
    for stmt in body.stmts:
        if name in stmt_uses(stmt):
            return False
        if name in stmt_strong_defs(stmt):
            return True
        # Conservative: a branch that uses it inside counts as a use.
        for node in stmt.walk():
            if node is stmt:
                continue
            if isinstance(node, (Assign, Decl, ExprStmt)) and \
                    name in stmt_uses(node):
                return False
            if isinstance(node, (Assign, Decl)) and \
                    name in stmt_strong_defs(node):
                return True
    return False


def _has_calls(body: Block, pure: Set[str]) -> List[str]:
    """Names of called functions that are not known-pure."""
    impure: List[str] = []
    for stmt in body.stmts:
        for node in stmt.walk():
            if isinstance(node, Call) and node.name not in pure:
                impure.append(node.name)
    return impure


PURE_INTRINSICS = {"abs", "min", "max", "sqrt", "floor", "ceil"}


def analyze_loop(loop: For, invariants: Optional[Set[str]] = None,
                 pure_functions: Optional[Set[str]] = None) -> LoopInfo:
    """Analyze a counted for-loop for parallelizability."""
    header = _extract_counted_header(loop)
    if header is None:
        return LoopInfo(loop, "", None, None, 0, LoopClass.SEQUENTIAL,
                        reasons=["not a counted loop"])
    var, lower, upper, step = header
    invariants = set(invariants or set())
    pure = PURE_INTRINSICS | set(pure_functions or set())

    reasons: List[str] = []
    if _body_writes_var(loop.body, var):
        reasons.append(f"loop variable {var!r} modified in body")

    impure_calls = _has_calls(loop.body, pure)
    if impure_calls:
        reasons.append(f"calls to possibly-impure functions: "
                       f"{sorted(set(impure_calls))}")

    # Pointer dereferences / address-taking defeat the subscript tests:
    # a *p access may alias anything, so be conservative.  (The Source
    # Recoder's pointer-recoding transformation exists to remove exactly
    # this imprecision -- ablation A4.)
    for stmt in loop.body.stmts:
        for node in stmt.walk():
            if isinstance(node, UnaryOp) and node.op in ("*", "&"):
                reasons.append(
                    "pointer expression defeats dependence analysis")
                break
        else:
            continue
        break

    # Loop-invariant names: anything used but never written in the body.
    body_writes: Set[str] = set()
    for stmt in loop.body.stmts:
        for node in stmt.walk():
            if isinstance(node, (Assign, Decl)):
                body_writes |= stmt_defs(node)
    body_reads: Set[str] = set()
    for stmt in loop.body.stmts:
        for node in stmt.walk():
            if isinstance(node, (Assign, Decl, ExprStmt)):
                body_reads |= stmt_uses(node)
    invariants |= (body_reads - body_writes - {var})

    # Array dependences.
    accesses = collect_array_accesses(loop.body)
    dependences: List[Dependence] = []
    for i, first in enumerate(accesses):
        for second in accesses[i:]:
            if first.array != second.array:
                continue
            if not first.is_write and not second.is_write:
                continue
            verdict = _test_pair(first, second, var, invariants)
            if verdict is None:
                continue
            distance, reason = verdict
            carried = distance is None or distance != 0
            if first is second:
                carried = distance is None or distance != 0
                if distance == 0:
                    continue
            kind = ("output" if first.is_write and second.is_write else
                    "flow" if first.is_write else "anti")
            dependences.append(Dependence(kind, first.array, first, second,
                                          distance, carried, reason))

    private, reductions, carried_scalars = _scalar_analysis(loop.body, var)

    carried_array_deps = [d for d in dependences if d.loop_carried]
    if reasons or carried_array_deps or carried_scalars:
        classification = LoopClass.SEQUENTIAL
        for dep in carried_array_deps:
            reasons.append(f"loop-carried {dep.kind} dependence on "
                           f"{dep.array!r} ({dep.reason})")
        for name in sorted(carried_scalars):
            reasons.append(f"loop-carried scalar {name!r}")
    elif reductions:
        classification = LoopClass.REDUCTION
    else:
        classification = LoopClass.DOALL

    return LoopInfo(loop, var, lower, upper, step, classification,
                    dependences, reductions, private, carried_scalars,
                    reasons)


def classify_loop(loop: For, **kwargs) -> LoopClass:
    """Shorthand returning only the classification."""
    return analyze_loop(loop, **kwargs).classification


def find_loops(body: Block) -> List[For]:
    """All for-loops in a block, outermost first."""
    loops: List[For] = []
    for stmt in body.stmts:
        for node in stmt.walk():
            if isinstance(node, For):
                loops.append(node)
    return loops


__all__ = ["AccessInfo", "Affine", "Dependence", "LoopClass", "LoopInfo",
           "REDUCTION_OPS", "affine_of", "analyze_loop", "classify_loop",
           "collect_array_accesses", "find_loops"]
