"""Static cost estimation for mini-C code.

MAPS needs per-task weights to balance partitions before any profile
exists (section IV: the "coarse model of the target architecture").  This
module walks the AST and produces abstract operation counts, scaling loop
bodies by their (statically known) trip counts where possible.

Costs are per-PE-class: a processing element class provides multipliers
for arithmetic, memory and control operations, which is how heterogeneous
PEs (RISC vs DSP vs accelerator) are modelled coarsely.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.cir.analysis.dependence import _extract_counted_header
from repro.cir.nodes import (
    ArrayIndex, Assign, BinOp, Block, Break, Call, Cond, Continue, Decl,
    Expr, ExprStmt, FloatLit, For, FuncDef, Ident, If, IntLit, Program,
    Return, Stmt, StringLit, UnaryOp, While,
)

DEFAULT_TRIP_COUNT = 16  # assumed iterations for loops with unknown bounds
DEFAULT_BRANCH_PROBABILITY = 0.5


@dataclass(frozen=True)
class CostWeights:
    """Per-operation abstract costs for one PE class."""

    arith: float = 1.0
    memory: float = 2.0
    control: float = 1.0
    call: float = 5.0

    @classmethod
    def for_pe_class(cls, pe_class: str) -> "CostWeights":
        """Coarse PE-class presets used by the MAPS platform model."""
        presets = {
            "risc": cls(arith=1.0, memory=2.0, control=1.0, call=5.0),
            "dsp": cls(arith=0.5, memory=1.5, control=2.0, call=8.0),
            "vliw": cls(arith=0.35, memory=1.2, control=2.5, call=10.0),
            "accelerator": cls(arith=0.2, memory=1.0, control=4.0, call=20.0),
        }
        return presets.get(pe_class, cls())


@dataclass
class CostEstimate:
    """Abstract cycles plus a breakdown."""

    total: float = 0.0
    arith_ops: float = 0.0
    memory_ops: float = 0.0
    control_ops: float = 0.0
    calls: float = 0.0

    def add(self, other: "CostEstimate", scale: float = 1.0) -> None:
        self.total += other.total * scale
        self.arith_ops += other.arith_ops * scale
        self.memory_ops += other.memory_ops * scale
        self.control_ops += other.control_ops * scale
        self.calls += other.calls * scale


class _Estimator:
    def __init__(self, weights: CostWeights,
                 program: Optional[Program] = None,
                 env: Optional[Dict[str, int]] = None) -> None:
        self.weights = weights
        self.program = program
        self.env = dict(env or {})
        self._func_cache: Dict[str, CostEstimate] = {}
        self._in_progress: set = set()

    # -- expressions ----------------------------------------------------
    def expr(self, node: Expr) -> CostEstimate:
        est = CostEstimate()
        w = self.weights
        if isinstance(node, (IntLit, FloatLit, StringLit)):
            return est
        if isinstance(node, Ident):
            return est
        if isinstance(node, ArrayIndex):
            est.memory_ops += 1
            est.total += w.memory
            for index in node.index_chain():
                est.add(self.expr(index))
            return est
        if isinstance(node, Call):
            est.calls += 1
            est.total += w.call
            for arg in node.args:
                est.add(self.expr(arg))
            callee = self._function_cost(node.name)
            if callee is not None:
                est.add(callee)
            return est
        if isinstance(node, BinOp):
            est.arith_ops += 1
            est.total += w.arith
            est.add(self.expr(node.left))
            est.add(self.expr(node.right))
            return est
        if isinstance(node, UnaryOp):
            est.arith_ops += 1
            est.total += w.arith
            est.add(self.expr(node.operand))
            return est
        if isinstance(node, Cond):
            est.control_ops += 1
            est.total += w.control
            est.add(self.expr(node.test))
            est.add(self.expr(node.then), DEFAULT_BRANCH_PROBABILITY)
            est.add(self.expr(node.other), DEFAULT_BRANCH_PROBABILITY)
            return est
        return est

    def _function_cost(self, name: str) -> Optional[CostEstimate]:
        if self.program is None or not self.program.has_function(name):
            return None
        if name in self._in_progress:
            return None  # recursion: charge only the call overhead
        if name not in self._func_cache:
            self._in_progress.add(name)
            func = self.program.function(name)
            self._func_cache[name] = self.block(func.body)
            self._in_progress.discard(name)
        return self._func_cache[name]

    # -- statements -------------------------------------------------------
    def stmt(self, node: Stmt) -> CostEstimate:
        est = CostEstimate()
        w = self.weights
        if isinstance(node, Decl):
            if node.init is not None:
                est.add(self.expr(node.init))
                est.memory_ops += 1
                est.total += w.memory
            return est
        if isinstance(node, Assign):
            est.add(self.expr(node.value))
            if node.op:
                est.arith_ops += 1
                est.total += w.arith
            if isinstance(node.target, ArrayIndex):
                est.add(self.expr(node.target))
            est.memory_ops += 1
            est.total += w.memory
            return est
        if isinstance(node, ExprStmt):
            return self.expr(node.expr)
        if isinstance(node, Block):
            return self.block(node)
        if isinstance(node, If):
            est.control_ops += 1
            est.total += w.control
            est.add(self.expr(node.test))
            est.add(self.block(node.then), DEFAULT_BRANCH_PROBABILITY)
            if node.other is not None:
                est.add(self.block(node.other), DEFAULT_BRANCH_PROBABILITY)
            return est
        if isinstance(node, While):
            trips = DEFAULT_TRIP_COUNT
            body = self.block(node.body)
            test = self.expr(node.test)
            est.add(test, trips + 1)
            est.add(body, trips)
            est.control_ops += trips
            est.total += w.control * trips
            return est
        if isinstance(node, For):
            trips = self.trip_count(node)
            if node.init is not None:
                est.add(self.stmt(node.init))
            if node.test is not None:
                est.add(self.expr(node.test), trips + 1)
            if node.step is not None:
                est.add(self.stmt(node.step), trips)
            est.add(self.block(node.body), trips)
            est.control_ops += trips
            est.total += w.control * trips
            return est
        if isinstance(node, Return):
            if node.value is not None:
                est.add(self.expr(node.value))
            est.control_ops += 1
            est.total += w.control
            return est
        if isinstance(node, (Break, Continue)):
            est.control_ops += 1
            est.total += w.control
            return est
        return est

    def block(self, block: Block) -> CostEstimate:
        est = CostEstimate()
        for stmt in block.stmts:
            est.add(self.stmt(stmt))
        return est

    def trip_count(self, loop: For) -> float:
        """Static trip count if bounds are integer literals / known names."""
        header = _extract_counted_header(loop)
        if header is None:
            return DEFAULT_TRIP_COUNT
        _, lower, upper, step = header
        low = self._const_value(lower)
        high = self._const_value(upper)
        if low is None or high is None or step == 0:
            return DEFAULT_TRIP_COUNT
        trips = (high - low) / step
        return max(0.0, trips)

    def _const_value(self, expr: Optional[Expr]) -> Optional[float]:
        if expr is None:
            return None
        if isinstance(expr, IntLit):
            return float(expr.value)
        if isinstance(expr, Ident) and expr.name in self.env:
            return float(self.env[expr.name])
        if isinstance(expr, BinOp):
            left = self._const_value(expr.left)
            right = self._const_value(expr.right)
            if left is None or right is None:
                return None
            try:
                return {
                    "+": left + right, "-": left - right, "*": left * right,
                    "/": left / right if right else None,
                }.get(expr.op)
            except ZeroDivisionError:
                return None
        return None


def estimate_cost(stmt: Stmt, weights: Optional[CostWeights] = None,
                  program: Optional[Program] = None,
                  env: Optional[Dict[str, int]] = None) -> CostEstimate:
    """Estimate the abstract cost of one statement (loops scaled by trips)."""
    estimator = _Estimator(weights or CostWeights(), program, env)
    return estimator.stmt(stmt)


def estimate_function_cost(func: FuncDef,
                           weights: Optional[CostWeights] = None,
                           program: Optional[Program] = None,
                           env: Optional[Dict[str, int]] = None) -> CostEstimate:
    """Estimate the abstract cost of a whole function body."""
    estimator = _Estimator(weights or CostWeights(), program, env)
    return estimator.block(func.body)


__all__ = ["CostEstimate", "CostWeights", "DEFAULT_TRIP_COUNT",
           "estimate_cost", "estimate_function_cost"]
