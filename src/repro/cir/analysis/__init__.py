"""Static analyses over mini-C ASTs.

These are the analyses the paper's tools depend on:

- :mod:`repro.cir.analysis.cfg` -- per-function control-flow graphs;
- :mod:`repro.cir.analysis.dataflow` -- reaching definitions, liveness and
  def-use chains (the "advanced dataflow analysis" of MAPS, section IV);
- :mod:`repro.cir.analysis.dependence` -- loop dependence testing and
  DOALL/reduction classification, used by both the MAPS partitioner and the
  Source Recoder's shared-data-access analysis (section VI);
- :mod:`repro.cir.analysis.cost` -- static cost estimation for task weights.
"""

from repro.cir.analysis.cfg import CFG, CFGNode, build_cfg
from repro.cir.analysis.dataflow import (
    DataflowResult,
    analyze_dataflow,
    stmt_defs,
    stmt_uses,
)
from repro.cir.analysis.dependence import (
    AccessInfo,
    Dependence,
    LoopInfo,
    LoopClass,
    analyze_loop,
    classify_loop,
    collect_array_accesses,
)
from repro.cir.analysis.cost import estimate_cost, estimate_function_cost

__all__ = [
    "AccessInfo", "CFG", "CFGNode", "DataflowResult", "Dependence",
    "LoopClass", "LoopInfo", "analyze_dataflow", "analyze_loop",
    "build_cfg", "classify_loop", "collect_array_accesses", "estimate_cost",
    "estimate_function_cost", "stmt_defs", "stmt_uses",
]
