"""Classic dataflow analyses: reaching definitions, liveness, def-use chains.

These run over the :class:`~repro.cir.analysis.cfg.CFG` with a standard
worklist algorithm.  Array writes are treated as *may*-definitions of the
whole array (they do not kill earlier definitions); scalar writes are
strong definitions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional, Set, Tuple

from repro.cir.analysis.cfg import CFG, CFGNode
from repro.cir.nodes import (
    ArrayIndex, Assign, Decl, Expr, ExprStmt, Ident, Return, Stmt,
    UnaryOp,
)


def expr_uses(expr: Optional[Expr]) -> Set[str]:
    """Names read by an expression (array names count as uses when indexed)."""
    if expr is None:
        return set()
    names: Set[str] = set()
    for node in expr.walk():
        if isinstance(node, Ident):
            names.add(node.name)
    return names


def _target_def(target: Expr) -> Tuple[Optional[str], bool, Set[str]]:
    """For an assignment target return (defined name, is_strong, extra uses).

    - Scalar ``x = ...``      -> ('x', strong, {})
    - Array ``a[i] = ...``    -> ('a', weak, uses of the indices + 'a')
    - Pointer ``*p = ...``    -> (None, weak, {'p'}) -- unknown target.
    """
    if isinstance(target, Ident):
        return target.name, True, set()
    if isinstance(target, ArrayIndex):
        root = target.root_ident()
        uses: Set[str] = set()
        for index in target.index_chain():
            uses |= expr_uses(index)
        if root is not None:
            uses.add(root.name)
            return root.name, False, uses
        return None, False, uses
    if isinstance(target, UnaryOp) and target.op == "*":
        return None, False, expr_uses(target.operand)
    return None, False, expr_uses(target)


def stmt_defs(stmt: Stmt) -> Set[str]:
    """Names (possibly weakly) defined by a statement."""
    if isinstance(stmt, Decl):
        return {stmt.name}
    if isinstance(stmt, Assign):
        name, _, _ = _target_def(stmt.target)
        return {name} if name is not None else set()
    if isinstance(stmt, ExprStmt):
        # A call may write through array/pointer arguments; handled by the
        # dependence layer, not here.
        return set()
    return set()


def stmt_strong_defs(stmt: Stmt) -> Set[str]:
    """Names strongly (killing) defined by a statement."""
    if isinstance(stmt, Decl):
        return {stmt.name}
    if isinstance(stmt, Assign):
        name, strong, _ = _target_def(stmt.target)
        return {name} if (name is not None and strong) else set()
    return set()


def stmt_uses(stmt: Stmt) -> Set[str]:
    """Names read by a statement."""
    if isinstance(stmt, Decl):
        return expr_uses(stmt.init)
    if isinstance(stmt, Assign):
        _, _, target_uses = _target_def(stmt.target)
        uses = expr_uses(stmt.value) | target_uses
        if stmt.op:  # compound assignment reads the target too
            uses |= expr_uses(stmt.target)
        return uses
    if isinstance(stmt, ExprStmt):
        return expr_uses(stmt.expr)
    if isinstance(stmt, Return):
        return expr_uses(stmt.value)
    return set()


# A definition site: (cfg node id, variable name).
DefSite = Tuple[int, str]


@dataclass
class DataflowResult:
    """Results of the intra-procedural dataflow analyses."""

    cfg: CFG
    reach_in: Dict[int, FrozenSet[DefSite]] = field(default_factory=dict)
    reach_out: Dict[int, FrozenSet[DefSite]] = field(default_factory=dict)
    live_in: Dict[int, FrozenSet[str]] = field(default_factory=dict)
    live_out: Dict[int, FrozenSet[str]] = field(default_factory=dict)
    # (use node id, var) -> def node ids reaching that use.
    def_use: Dict[Tuple[int, str], FrozenSet[int]] = field(default_factory=dict)

    def reaching_defs_of(self, nid: int, var: str) -> FrozenSet[int]:
        return self.def_use.get((nid, var), frozenset())

    def is_live_out(self, nid: int, var: str) -> bool:
        return var in self.live_out.get(nid, frozenset())


def _node_defs(node: CFGNode) -> Set[str]:
    if node.kind == "stmt" and node.stmt is not None:
        return stmt_defs(node.stmt)
    return set()


def _node_strong_defs(node: CFGNode) -> Set[str]:
    if node.kind == "stmt" and node.stmt is not None:
        return stmt_strong_defs(node.stmt)
    return set()


def _node_uses(node: CFGNode) -> Set[str]:
    if node.kind == "stmt" and node.stmt is not None:
        return stmt_uses(node.stmt)
    if node.kind == "branch" and node.test is not None:
        return expr_uses(node.test)
    return set()


def analyze_dataflow(cfg: CFG) -> DataflowResult:
    """Run reaching-definitions and liveness to a fixed point."""
    result = DataflowResult(cfg)
    nodes = list(cfg.nodes.values())

    # ---------------- reaching definitions (forward, may) ----------------
    gen: Dict[int, Set[DefSite]] = {}
    kill_vars: Dict[int, Set[str]] = {}
    for node in nodes:
        gen[node.nid] = {(node.nid, var) for var in _node_defs(node)}
        kill_vars[node.nid] = _node_strong_defs(node)

    reach_in: Dict[int, Set[DefSite]] = {n.nid: set() for n in nodes}
    reach_out: Dict[int, Set[DefSite]] = {n.nid: set() for n in nodes}
    worklist = [n.nid for n in nodes]
    while worklist:
        nid = worklist.pop()
        node = cfg.node(nid)
        incoming: Set[DefSite] = set()
        for pred in node.preds:
            incoming |= reach_out[pred]
        reach_in[nid] = incoming
        killed = kill_vars[nid]
        outgoing = {site for site in incoming if site[1] not in killed}
        outgoing |= gen[nid]
        if outgoing != reach_out[nid]:
            reach_out[nid] = outgoing
            worklist.extend(node.succs)

    # ---------------- liveness (backward, may) ----------------
    live_in: Dict[int, Set[str]] = {n.nid: set() for n in nodes}
    live_out: Dict[int, Set[str]] = {n.nid: set() for n in nodes}
    worklist = [n.nid for n in nodes]
    while worklist:
        nid = worklist.pop()
        node = cfg.node(nid)
        outgoing = set()
        for succ in node.succs:
            outgoing |= live_in[succ]
        live_out[nid] = outgoing
        strong = _node_strong_defs(node)
        incoming = _node_uses(node) | (outgoing - strong)
        if incoming != live_in[nid]:
            live_in[nid] = incoming
            worklist.extend(node.preds)

    # ---------------- def-use chains ----------------
    def_use: Dict[Tuple[int, str], Set[int]] = {}
    for node in nodes:
        for var in _node_uses(node):
            reaching = {site_nid for (site_nid, site_var) in reach_in[node.nid]
                        if site_var == var}
            if reaching:
                def_use[(node.nid, var)] = reaching

    result.reach_in = {k: frozenset(v) for k, v in reach_in.items()}
    result.reach_out = {k: frozenset(v) for k, v in reach_out.items()}
    result.live_in = {k: frozenset(v) for k, v in live_in.items()}
    result.live_out = {k: frozenset(v) for k, v in live_out.items()}
    result.def_use = {k: frozenset(v) for k, v in def_use.items()}
    return result


__all__ = ["DataflowResult", "DefSite", "analyze_dataflow", "expr_uses",
           "stmt_defs", "stmt_strong_defs", "stmt_uses"]
