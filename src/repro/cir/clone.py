"""Deep-cloning of AST nodes with fresh node ids.

Partitioning (MAPS) and every Source Recoder transformation produce new
statements derived from existing ones; cloning keeps the original AST
intact and gives the copies fresh ``node_id`` values so analyses never
confuse them with their originals.
"""

from __future__ import annotations

import dataclasses
from typing import Any, List, TypeVar

from repro.cir.nodes import Node

N = TypeVar("N", bound=Node)


def clone(node: N) -> N:
    """Deep-copy an AST node; every copied node gets a fresh node_id."""
    if not isinstance(node, Node):
        raise TypeError(f"clone expects a Node, got {node!r}")
    kwargs: dict = {}
    for field in dataclasses.fields(node):
        if field.name == "node_id":
            continue  # regenerate via default_factory
        value = getattr(node, field.name)
        kwargs[field.name] = _clone_value(value)
    return type(node)(**kwargs)


def _clone_value(value: Any) -> Any:
    if isinstance(value, Node):
        return clone(value)
    if isinstance(value, list):
        return [_clone_value(item) for item in value]
    if isinstance(value, tuple):
        return tuple(_clone_value(item) for item in value)
    if isinstance(value, dict):
        return {key: _clone_value(item) for key, item in value.items()}
    return value  # scalars, strings, Types (frozen) are shared


def clone_list(nodes: List[N]) -> List[N]:
    return [clone(node) for node in nodes]


__all__ = ["clone", "clone_list"]
