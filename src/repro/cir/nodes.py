"""AST node classes for mini-C.

Every node carries a source position and a process-unique ``node_id``.  The
Source Recoder (section VI) keys its document<->AST synchronization on these
ids, and the analyses in :mod:`repro.cir.analysis` use them as stable
dictionary keys.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterator, List, Optional

from repro.cir.typesys import Type

_node_counter = itertools.count(1)


def _fresh_id() -> int:
    return next(_node_counter)


@dataclass
class Node:
    """Base class for all AST nodes."""

    line: int = field(default=0, kw_only=True)
    col: int = field(default=0, kw_only=True)
    node_id: int = field(default_factory=_fresh_id, kw_only=True)

    def children(self) -> Iterator["Node"]:
        """Yield direct child nodes (order = source order)."""
        return iter(())

    def walk(self) -> Iterator["Node"]:
        """Yield this node and all descendants, pre-order."""
        yield self
        for child in self.children():
            yield from child.walk()


# ---------------------------------------------------------------------------
# expressions
# ---------------------------------------------------------------------------

@dataclass
class Expr(Node):
    """Base class for expressions."""


@dataclass
class IntLit(Expr):
    value: int = 0


@dataclass
class FloatLit(Expr):
    value: float = 0.0


@dataclass
class StringLit(Expr):
    value: str = ""


@dataclass
class Ident(Expr):
    name: str = ""


@dataclass
class ArrayIndex(Expr):
    """``base[index]`` -- base may itself be an ArrayIndex (2-D arrays)."""

    base: Expr = None  # type: ignore[assignment]
    index: Expr = None  # type: ignore[assignment]

    def children(self) -> Iterator[Node]:
        yield self.base
        yield self.index

    def root_ident(self) -> Optional[Ident]:
        """The identifier at the bottom of an index chain, if any."""
        base = self.base
        while isinstance(base, ArrayIndex):
            base = base.base
        return base if isinstance(base, Ident) else None

    def index_chain(self) -> List[Expr]:
        """All index expressions outermost-last, e.g. ``a[i][j]`` -> [i, j]."""
        chain: List[Expr] = []
        node: Expr = self
        while isinstance(node, ArrayIndex):
            chain.append(node.index)
            node = node.base
        chain.reverse()
        return chain


@dataclass
class Call(Expr):
    name: str = ""
    args: List[Expr] = field(default_factory=list)

    def children(self) -> Iterator[Node]:
        yield from self.args


@dataclass
class BinOp(Expr):
    op: str = "+"
    left: Expr = None  # type: ignore[assignment]
    right: Expr = None  # type: ignore[assignment]

    def children(self) -> Iterator[Node]:
        yield self.left
        yield self.right


@dataclass
class UnaryOp(Expr):
    """Unary operators: ``-``, ``!``, ``~``, ``*`` (deref), ``&`` (addr-of)."""

    op: str = "-"
    operand: Expr = None  # type: ignore[assignment]

    def children(self) -> Iterator[Node]:
        yield self.operand


@dataclass
class Cond(Expr):
    """Ternary conditional ``test ? then : other``."""

    test: Expr = None  # type: ignore[assignment]
    then: Expr = None  # type: ignore[assignment]
    other: Expr = None  # type: ignore[assignment]

    def children(self) -> Iterator[Node]:
        yield self.test
        yield self.then
        yield self.other


# ---------------------------------------------------------------------------
# statements
# ---------------------------------------------------------------------------

@dataclass
class Stmt(Node):
    """Base class for statements."""


@dataclass
class Decl(Stmt):
    """Variable declaration with optional initializer."""

    type: Type = None  # type: ignore[assignment]
    name: str = ""
    init: Optional[Expr] = None
    const: bool = False

    def children(self) -> Iterator[Node]:
        if self.init is not None:
            yield self.init


@dataclass
class Assign(Stmt):
    """Assignment statement: ``target op= value`` (op '' for plain ``=``)."""

    target: Expr = None  # type: ignore[assignment]
    value: Expr = None  # type: ignore[assignment]
    op: str = ""  # '', '+', '-', '*', '/', '%', '<<', '>>', '&', '|', '^'

    def children(self) -> Iterator[Node]:
        yield self.target
        yield self.value


@dataclass
class ExprStmt(Stmt):
    expr: Expr = None  # type: ignore[assignment]

    def children(self) -> Iterator[Node]:
        yield self.expr


@dataclass
class Block(Stmt):
    stmts: List[Stmt] = field(default_factory=list)

    def children(self) -> Iterator[Node]:
        yield from self.stmts


@dataclass
class If(Stmt):
    test: Expr = None  # type: ignore[assignment]
    then: Block = None  # type: ignore[assignment]
    other: Optional[Block] = None

    def children(self) -> Iterator[Node]:
        yield self.test
        yield self.then
        if self.other is not None:
            yield self.other


@dataclass
class While(Stmt):
    test: Expr = None  # type: ignore[assignment]
    body: Block = None  # type: ignore[assignment]

    def children(self) -> Iterator[Node]:
        yield self.test
        yield self.body


@dataclass
class For(Stmt):
    """C-style for loop; init/step are statements, any may be None."""

    init: Optional[Stmt] = None
    test: Optional[Expr] = None
    step: Optional[Stmt] = None
    body: Block = None  # type: ignore[assignment]

    def children(self) -> Iterator[Node]:
        if self.init is not None:
            yield self.init
        if self.test is not None:
            yield self.test
        if self.step is not None:
            yield self.step
        yield self.body


@dataclass
class Return(Stmt):
    value: Optional[Expr] = None

    def children(self) -> Iterator[Node]:
        if self.value is not None:
            yield self.value


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


# ---------------------------------------------------------------------------
# declarations
# ---------------------------------------------------------------------------

@dataclass
class Param(Node):
    type: Type = None  # type: ignore[assignment]
    name: str = ""


@dataclass
class FuncDef(Node):
    return_type: Type = None  # type: ignore[assignment]
    name: str = ""
    params: List[Param] = field(default_factory=list)
    body: Block = None  # type: ignore[assignment]

    def children(self) -> Iterator[Node]:
        yield from self.params
        yield self.body


@dataclass
class Program(Node):
    """A translation unit: global declarations and function definitions."""

    globals: List[Decl] = field(default_factory=list)
    functions: List[FuncDef] = field(default_factory=list)

    def children(self) -> Iterator[Node]:
        yield from self.globals
        yield from self.functions

    def function(self, name: str) -> FuncDef:
        for func in self.functions:
            if func.name == name:
                return func
        raise KeyError(f"no function named {name!r}")

    def has_function(self, name: str) -> bool:
        return any(func.name == name for func in self.functions)


__all__ = [
    "ArrayIndex", "Assign", "BinOp", "Block", "Break", "Call", "Cond",
    "Continue", "Decl", "Expr", "ExprStmt", "FloatLit", "For", "FuncDef",
    "Ident", "If", "IntLit", "Node", "Param", "Program", "Return", "Stmt",
    "StringLit", "UnaryOp", "While",
]
