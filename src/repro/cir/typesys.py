"""The mini-C type system: scalars, fixed-size arrays, one-level pointers."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple


class TypeError_(Exception):
    """Raised on a type violation (named with a trailing underscore to avoid
    shadowing the builtin)."""


@dataclass(frozen=True)
class Type:
    """Base class of mini-C types."""

    def is_scalar(self) -> bool:
        return isinstance(self, ScalarType)

    def is_array(self) -> bool:
        return isinstance(self, ArrayType)

    def is_pointer(self) -> bool:
        return isinstance(self, PointerType)

    def sizeof(self) -> int:
        """Size in abstract words (scalars are 1 word)."""
        raise NotImplementedError


@dataclass(frozen=True)
class ScalarType(Type):
    """``int``, ``float`` or ``void``."""

    name: str  # 'int' | 'float' | 'void'

    def sizeof(self) -> int:
        return 0 if self.name == "void" else 1

    def __str__(self) -> str:
        return self.name


INT = ScalarType("int")
FLOAT = ScalarType("float")
VOID = ScalarType("void")


@dataclass(frozen=True)
class ArrayType(Type):
    """Fixed-size (possibly multi-dimensional) array of a scalar element."""

    element: ScalarType
    dims: Tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.dims:
            raise TypeError_("array must have at least one dimension")
        if any(d <= 0 for d in self.dims):
            raise TypeError_(f"array dimensions must be positive: {self.dims}")

    def sizeof(self) -> int:
        total = self.element.sizeof()
        for dim in self.dims:
            total *= dim
        return total

    def inner(self) -> Type:
        """The type obtained by one level of indexing."""
        if len(self.dims) == 1:
            return self.element
        return ArrayType(self.element, self.dims[1:])

    def __str__(self) -> str:
        return str(self.element) + "".join(f"[{d}]" for d in self.dims)


@dataclass(frozen=True)
class PointerType(Type):
    """One-level pointer to a scalar (``int *`` / ``float *``).

    Deeper indirection is deliberately unsupported: the Source Recoder's
    pointer-recoding transformation (section VI) exists precisely to remove
    pointer expressions from models, and one level is enough to demonstrate
    it.
    """

    pointee: ScalarType

    def sizeof(self) -> int:
        return 1

    def __str__(self) -> str:
        return f"{self.pointee} *"


def scalar(name: str) -> ScalarType:
    """Look up a scalar type by keyword."""
    table = {"int": INT, "float": FLOAT, "void": VOID}
    if name not in table:
        raise TypeError_(f"unknown type {name!r}")
    return table[name]


def unify_arith(left: Type, right: Type) -> ScalarType:
    """Result type of an arithmetic operation (C-style int->float promotion)."""
    if not left.is_scalar() or not right.is_scalar():
        raise TypeError_(f"arithmetic on non-scalar types {left} and {right}")
    if FLOAT in (left, right):
        return FLOAT
    return INT


__all__ = ["ArrayType", "FLOAT", "INT", "PointerType", "ScalarType", "Type",
           "TypeError_", "VOID", "scalar", "unify_arith"]
