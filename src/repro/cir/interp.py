"""AST interpreter for mini-C with operation counting.

The interpreter serves three roles in the reproduction:

1. **Semantics oracle** -- Source Recoder transformations (section VI) are
   validated by running a program before and after a transformation and
   comparing results and output.
2. **Cost model** -- executed-operation counts per function/statement feed
   the MAPS partitioner's task weights (section IV).
3. **Golden reference** -- MAPS-generated parallel task code is checked
   against the sequential interpretation.

Semantics follow C where the subset overlaps: truncating integer division,
short-circuit ``&&``/``||``, arrays passed by reference, scalars by value.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

import math

from repro.cir.nodes import (
    ArrayIndex, Assign, BinOp, Block, Break, Call, Cond, Continue, Decl,
    Expr, ExprStmt, FloatLit, For, FuncDef, Ident, If, IntLit, Program,
    Return, Stmt, StringLit, UnaryOp, While,
)
from repro.cir.typesys import ArrayType, PointerType, ScalarType, Type


class InterpError(Exception):
    """Raised on runtime errors: bad index, division by zero, step limit."""


@dataclass
class ArrayValue:
    """A (multi-dimensional) array stored flat, shared by reference."""

    element: ScalarType
    dims: Tuple[int, ...]
    storage: List[Any]

    @classmethod
    def zeros(cls, element: ScalarType, dims: Tuple[int, ...]) -> "ArrayValue":
        size = 1
        for dim in dims:
            size *= dim
        zero: Any = 0.0 if element.name == "float" else 0
        return cls(element, dims, [zero] * size)

    def flat_offset(self, indices: List[int]) -> int:
        if len(indices) != len(self.dims):
            raise InterpError(
                f"array needs {len(self.dims)} indices, got {len(indices)}")
        offset = 0
        for index, dim in zip(indices, self.dims):
            if not (0 <= index < dim):
                raise InterpError(
                    f"index {index} out of bounds for dimension {dim}")
            offset = offset * dim + index
        return offset

    def get(self, indices: List[int]) -> Any:
        return self.storage[self.flat_offset(indices)]

    def set(self, indices: List[int], value: Any) -> None:
        self.storage[self.flat_offset(indices)] = value

    def tolist(self) -> List[Any]:
        return list(self.storage)


@dataclass
class PointerValue:
    """A pointer into a storage list (array backing store or a scalar cell)."""

    storage: List[Any]
    offset: int

    def deref(self) -> Any:
        if not (0 <= self.offset < len(self.storage)):
            raise InterpError(f"pointer dereference out of bounds "
                              f"({self.offset}/{len(self.storage)})")
        return self.storage[self.offset]

    def store(self, value: Any) -> None:
        if not (0 <= self.offset < len(self.storage)):
            raise InterpError(f"pointer store out of bounds "
                              f"({self.offset}/{len(self.storage)})")
        self.storage[self.offset] = value


# A scalar variable lives in a one-slot list so '&x' can point at it.
Cell = List[Any]
Value = Union[int, float, str, ArrayValue, PointerValue]


class _BreakSignal(Exception):
    pass


class _ContinueSignal(Exception):
    pass


class _ReturnSignal(Exception):
    def __init__(self, value: Any) -> None:
        super().__init__()
        self.value = value


@dataclass
class RunResult:
    """Outcome of interpreting a program."""

    return_value: Any
    output: List[Any] = field(default_factory=list)
    op_count: int = 0
    stmt_count: int = 0
    call_counts: Dict[str, int] = field(default_factory=dict)
    func_op_counts: Dict[str, int] = field(default_factory=dict)
    globals: Dict[str, Any] = field(default_factory=dict)


class Interpreter:
    """Interprets a mini-C :class:`Program`.

    ``externals`` maps names of undeclared called functions to Python
    callables; this is how MAPS-generated task code reads/writes simulated
    channels (the generated C calls ``ch_read``/``ch_write``).
    """

    DEFAULT_STEP_LIMIT = 5_000_000

    def __init__(self, program: Program,
                 externals: Optional[Dict[str, Callable[..., Any]]] = None,
                 step_limit: int = DEFAULT_STEP_LIMIT) -> None:
        self.program = program
        self.externals = dict(externals or {})
        self.step_limit = step_limit
        self.functions: Dict[str, FuncDef] = {
            func.name: func for func in program.functions}
        self.globals_env: Dict[str, Value] = {}
        self.global_cells: Dict[str, Cell] = {}
        self.output: List[Any] = []
        self.op_count = 0
        self.stmt_count = 0
        self.call_counts: Dict[str, int] = {}
        self.func_op_counts: Dict[str, int] = {}
        self._call_stack: List[str] = []
        self._block_decl_cache: Dict[int, bool] = {}
        self._init_globals()

    # ------------------------------------------------------------------
    def _init_globals(self) -> None:
        for decl in self.program.globals:
            value = self._default_value(decl.type)
            if decl.init is not None:
                value = self._coerce(self._eval(decl.init, self.globals_env,
                                                self.global_cells), decl.type)
            if decl.type.is_scalar():
                self.global_cells[decl.name] = [value]
            self.globals_env[decl.name] = value

    def _default_value(self, dtype: Type) -> Value:
        if isinstance(dtype, ArrayType):
            return ArrayValue.zeros(dtype.element, dtype.dims)
        if isinstance(dtype, PointerType):
            return PointerValue([0], 0)
        if isinstance(dtype, ScalarType) and dtype.name == "float":
            return 0.0
        return 0

    @staticmethod
    def _coerce(value: Any, dtype: Type) -> Any:
        if isinstance(dtype, ScalarType):
            if dtype.name == "int" and isinstance(value, float):
                return int(value)
            if dtype.name == "float" and isinstance(value, int):
                return float(value)
        return value

    # ------------------------------------------------------------------
    # public entry points
    # ------------------------------------------------------------------
    def run(self, entry: str = "main", args: Optional[List[Any]] = None) -> RunResult:
        """Call ``entry`` and package the result."""
        value = self.call(entry, args or [])
        snapshot = {
            name: (val.tolist() if isinstance(val, ArrayValue) else
                   (self.global_cells[name][0]
                    if name in self.global_cells else val))
            for name, val in self.globals_env.items()
        }
        return RunResult(
            return_value=value,
            output=list(self.output),
            op_count=self.op_count,
            stmt_count=self.stmt_count,
            call_counts=dict(self.call_counts),
            func_op_counts=dict(self.func_op_counts),
            globals=snapshot,
        )

    def call(self, name: str, args: List[Any]) -> Any:
        """Invoke a mini-C function (or an external) with Python values."""
        if name not in self.functions:
            if name in self.externals:
                return self.externals[name](*args)
            intrinsic = _INTRINSICS.get(name)
            if intrinsic is not None:
                return intrinsic(self, args)
            raise InterpError(f"call to unknown function {name!r}")
        func = self.functions[name]
        if len(args) != len(func.params):
            raise InterpError(
                f"{name}() expects {len(func.params)} args, got {len(args)}")
        env: Dict[str, Value] = {}
        cells: Dict[str, Cell] = {}
        for param, arg in zip(func.params, args):
            value = self._coerce(arg, param.type)
            if param.type.is_scalar():
                cells[param.name] = [value]
            env[param.name] = value
        self.call_counts[name] = self.call_counts.get(name, 0) + 1
        self._call_stack.append(name)
        ops_before = self.op_count
        try:
            self._exec_block(func.body, env, cells)
            result: Any = None
        except _ReturnSignal as signal:
            result = signal.value
        finally:
            self._call_stack.pop()
            spent = self.op_count - ops_before
            self.func_op_counts[name] = self.func_op_counts.get(name, 0) + spent
        return self._coerce(result, func.return_type)

    # ------------------------------------------------------------------
    # statement execution
    # ------------------------------------------------------------------
    def _tick(self, amount: int = 1) -> None:
        self.op_count += amount
        if self.op_count > self.step_limit:
            raise InterpError(f"step limit {self.step_limit} exceeded "
                              f"(infinite loop?)")

    def _exec_block(self, block: Block, env: Dict[str, Value],
                    cells: Dict[str, Cell]) -> None:
        # Fast path: blocks without declarations (the common loop body)
        # need no shadowing bookkeeping.  Cached per block identity; valid
        # while the AST is not mutated under a running interpreter.
        block_id = id(block)
        has_decls = self._block_decl_cache.get(block_id)
        if has_decls is None:
            has_decls = any(isinstance(stmt, Decl) for stmt in block.stmts)
            self._block_decl_cache[block_id] = has_decls
        if not has_decls:
            execute = self._exec_stmt
            for stmt in block.stmts:
                execute(stmt, env, cells)
            return
        # Locals declared inside the block shadow and then disappear.
        declared: List[str] = []
        shadowed_env: Dict[str, Any] = {}
        shadowed_cells: Dict[str, Any] = {}
        try:
            for stmt in block.stmts:
                if isinstance(stmt, Decl):
                    if stmt.name in env and stmt.name not in declared:
                        shadowed_env[stmt.name] = env[stmt.name]
                        if stmt.name in cells:
                            shadowed_cells[stmt.name] = cells[stmt.name]
                    declared.append(stmt.name)
                self._exec_stmt(stmt, env, cells)
        finally:
            for name in declared:
                env.pop(name, None)
                cells.pop(name, None)
            env.update(shadowed_env)
            cells.update(shadowed_cells)

    def _exec_stmt(self, stmt: Stmt, env: Dict[str, Value],
                   cells: Dict[str, Cell]) -> None:
        # Hot path: dispatch on concrete node type (see _STMT_DISPATCH).
        self.stmt_count += 1
        self.op_count += 1
        if self.op_count > self.step_limit:
            raise InterpError(f"step limit {self.step_limit} exceeded "
                              f"(infinite loop?)")
        method = _STMT_DISPATCH.get(type(stmt))
        if method is None:
            raise InterpError(f"cannot execute statement {stmt!r}")
        method(self, stmt, env, cells)

    def _exec_decl(self, stmt, env, cells) -> None:
        value = self._default_value(stmt.type)
        if stmt.init is not None:
            value = self._coerce(self._eval(stmt.init, env, cells),
                                 stmt.type)
        if stmt.type.is_scalar():
            cells[stmt.name] = [value]
        env[stmt.name] = value

    def _exec_exprstmt(self, stmt, env, cells) -> None:
        self._eval(stmt.expr, env, cells)

    def _exec_if(self, stmt, env, cells) -> None:
        if self._truthy(self._eval(stmt.test, env, cells)):
            self._exec_block(stmt.then, env, cells)
        elif stmt.other is not None:
            self._exec_block(stmt.other, env, cells)

    def _exec_while(self, stmt, env, cells) -> None:
        while self._truthy(self._eval(stmt.test, env, cells)):
            self._tick()
            try:
                self._exec_block(stmt.body, env, cells)
            except _BreakSignal:
                break
            except _ContinueSignal:
                continue

    def _exec_return(self, stmt, env, cells) -> None:
        value = None
        if stmt.value is not None:
            value = self._eval(stmt.value, env, cells)
        raise _ReturnSignal(value)

    def _exec_break(self, stmt, env, cells) -> None:
        raise _BreakSignal()

    def _exec_continue(self, stmt, env, cells) -> None:
        raise _ContinueSignal()

    def _exec_for(self, stmt: For, env: Dict[str, Value],
                  cells: Dict[str, Cell]) -> None:
        # For-header declarations live for the duration of the loop.
        header_decl = isinstance(stmt.init, Decl)
        shadow: Tuple[Any, Any, bool] = (None, None, False)
        if header_decl:
            name = stmt.init.name  # type: ignore[union-attr]
            shadow = (env.get(name), cells.get(name), name in env)
        try:
            if stmt.init is not None:
                self._exec_stmt(stmt.init, env, cells)
            while (stmt.test is None or
                   self._truthy(self._eval(stmt.test, env, cells))):
                self._tick()
                try:
                    self._exec_block(stmt.body, env, cells)
                except _BreakSignal:
                    break
                except _ContinueSignal:
                    pass
                if stmt.step is not None:
                    self._exec_stmt(stmt.step, env, cells)
        finally:
            if header_decl:
                name = stmt.init.name  # type: ignore[union-attr]
                old_env, old_cell, was_present = shadow
                if was_present:
                    env[name] = old_env
                    if old_cell is not None:
                        cells[name] = old_cell
                else:
                    env.pop(name, None)
                    cells.pop(name, None)

    def _exec_assign(self, stmt: Assign, env: Dict[str, Value],
                     cells: Dict[str, Cell]) -> None:
        value = self._eval(stmt.value, env, cells)
        target = stmt.target
        if stmt.op:
            old = self._eval(target, env, cells)
            value = self._binop(stmt.op, old, value)
        self._store(target, value, env, cells)

    def _store(self, target: Expr, value: Any, env: Dict[str, Value],
               cells: Dict[str, Cell]) -> None:
        if isinstance(target, Ident):
            container_env, container_cells = self._containers(target.name,
                                                              env, cells)
            current = container_env.get(target.name)
            if isinstance(current, ArrayValue):
                raise InterpError(f"cannot assign to array {target.name!r}")
            if isinstance(current, (int, float)) and isinstance(value, float) \
                    and isinstance(current, int) and not isinstance(current, bool):
                value = int(value)
            container_env[target.name] = value
            if target.name in container_cells:
                container_cells[target.name][0] = value
        elif isinstance(target, ArrayIndex):
            array, indices = self._resolve_index(target, env, cells)
            if isinstance(array, PointerValue):
                if len(indices) != 1:
                    raise InterpError("pointer indexing takes one index")
                PointerValue(array.storage, array.offset + indices[0]).store(value)
            else:
                if array.element.name == "int" and isinstance(value, float):
                    value = int(value)
                array.set(indices, value)
        elif isinstance(target, UnaryOp) and target.op == "*":
            pointer = self._eval(target.operand, env, cells)
            if not isinstance(pointer, PointerValue):
                raise InterpError("dereferencing a non-pointer")
            pointer.store(value)
        else:
            raise InterpError(f"invalid assignment target {target!r}")

    def _containers(self, name: str, env: Dict[str, Value],
                    cells: Dict[str, Cell]):
        if name in env:
            return env, cells
        if name in self.globals_env:
            return self.globals_env, self.global_cells
        raise InterpError(f"undefined variable {name!r}")

    # ------------------------------------------------------------------
    # expression evaluation
    # ------------------------------------------------------------------
    def _eval(self, expr: Expr, env: Dict[str, Value],
              cells: Dict[str, Cell]) -> Any:
        # Hot path: dispatch on concrete node type (see _EVAL_DISPATCH).
        method = _EVAL_DISPATCH.get(type(expr))
        if method is None:
            raise InterpError(f"cannot evaluate expression {expr!r}")
        return method(self, expr, env, cells)

    def _eval_literal(self, expr, env, cells) -> Any:
        return expr.value

    def _eval_ident(self, expr, env, cells) -> Any:
        name = expr.name
        if name in env:
            return env[name]
        if name in self.globals_env:
            return self.globals_env[name]
        raise InterpError(f"undefined variable {name!r}")

    def _eval_index(self, expr, env, cells) -> Any:
        self._tick()
        array, indices = self._resolve_index(expr, env, cells)
        if isinstance(array, PointerValue):
            if len(indices) != 1:
                raise InterpError("pointer indexing takes one index")
            return PointerValue(array.storage,
                                array.offset + indices[0]).deref()
        if len(indices) < len(array.dims):
            raise InterpError("partial array indexing is unsupported")
        return array.get(indices)

    def _eval_call(self, expr, env, cells) -> Any:
        self._tick()
        args = [self._eval(arg, env, cells) for arg in expr.args]
        return self.call(expr.name, args)

    def _eval_cond(self, expr, env, cells) -> Any:
        self._tick()
        if self._truthy(self._eval(expr.test, env, cells)):
            return self._eval(expr.then, env, cells)
        return self._eval(expr.other, env, cells)

    def _resolve_index(self, expr: ArrayIndex, env: Dict[str, Value],
                       cells: Dict[str, Cell]):
        """Return (ArrayValue-or-PointerValue, [int indices])."""
        indices: List[int] = []
        node: Expr = expr
        while isinstance(node, ArrayIndex):
            index = self._eval(node.index, env, cells)
            if isinstance(index, float):
                index = int(index)
            indices.append(index)
            node = node.base
        indices.reverse()
        base = self._eval(node, env, cells)
        if isinstance(base, (ArrayValue, PointerValue)):
            return base, indices
        raise InterpError(f"indexing a non-array value via {node!r}")

    def _eval_unary(self, expr: UnaryOp, env: Dict[str, Value],
                    cells: Dict[str, Cell]) -> Any:
        self._tick()
        if expr.op == "&":
            return self._address_of(expr.operand, env, cells)
        value = self._eval(expr.operand, env, cells)
        if expr.op == "-":
            # Negating INT_MIN overflows on a 32-bit target; wrap like
            # every other int arithmetic op (floats stay host-precision).
            if type(value) is int:
                return _wrap32(-value)
            return -value
        if expr.op == "!":
            return 0 if self._truthy(value) else 1
        if expr.op == "~":
            return ~int(value)
        if expr.op == "*":
            if not isinstance(value, PointerValue):
                raise InterpError("dereferencing a non-pointer")
            return value.deref()
        raise InterpError(f"unknown unary operator {expr.op!r}")

    def _address_of(self, operand: Expr, env: Dict[str, Value],
                    cells: Dict[str, Cell]) -> PointerValue:
        if isinstance(operand, Ident):
            value_env, value_cells = self._containers(operand.name, env, cells)
            value = value_env[operand.name]
            if isinstance(value, ArrayValue):
                return PointerValue(value.storage, 0)
            if operand.name not in value_cells:
                value_cells[operand.name] = [value]
            return PointerValue(value_cells[operand.name], 0)
        if isinstance(operand, ArrayIndex):
            array, indices = self._resolve_index(operand, env, cells)
            if isinstance(array, PointerValue):
                if len(indices) != 1:
                    raise InterpError("pointer indexing takes one index")
                return PointerValue(array.storage, array.offset + indices[0])
            return PointerValue(array.storage, array.flat_offset(indices))
        raise InterpError(f"cannot take the address of {operand!r}")

    def _eval_binop(self, expr: BinOp, env: Dict[str, Value],
                    cells: Dict[str, Cell]) -> Any:
        self.op_count += 1
        if self.op_count > self.step_limit:
            raise InterpError(f"step limit {self.step_limit} exceeded "
                              f"(infinite loop?)")
        op = expr.op
        if op == "&&":
            left = self._eval(expr.left, env, cells)
            if not self._truthy(left):
                return 0
            return 1 if self._truthy(self._eval(expr.right, env, cells)) else 0
        if op == "||":
            left = self._eval(expr.left, env, cells)
            if self._truthy(left):
                return 1
            return 1 if self._truthy(self._eval(expr.right, env, cells)) else 0
        left = self._eval(expr.left, env, cells)
        right = self._eval(expr.right, env, cells)
        # Hot path: plain arithmetic via the operator table.
        if not (type(left) is PointerValue or type(right) is PointerValue):
            handler = _BIN_HANDLERS.get(op)
            if handler is not None:
                return handler(left, right)
        return self._binop(op, left, right)

    def _binop(self, op: str, left: Any, right: Any) -> Any:
        # Pointer arithmetic: ptr +/- int.
        if isinstance(left, PointerValue) and op in ("+", "-"):
            delta = int(right)
            if op == "-":
                delta = -delta
            return PointerValue(left.storage, left.offset + delta)
        if isinstance(right, PointerValue) and op == "+":
            return PointerValue(right.storage, right.offset + int(left))
        handler = _BIN_HANDLERS.get(op)
        if handler is None:
            raise InterpError(f"unknown binary operator {op!r}")
        return handler(left, right)

    @staticmethod
    def _truthy(value: Any) -> bool:
        if isinstance(value, PointerValue):
            return True
        return bool(value)


# ---------------------------------------------------------------------------
# dispatch tables (hot-path performance; behaviour identical to the
# straightforward isinstance chains they replace)
# ---------------------------------------------------------------------------

def _c_div(left: Any, right: Any) -> Any:
    if right == 0:
        raise InterpError("division by zero")
    if isinstance(left, int) and isinstance(right, int):
        # C semantics: truncation toward zero, wrapped to the 32-bit word
        # (the single overflow case, INT_MIN / -1, wraps back to INT_MIN
        # exactly like the ISS's div -- see repro.vp.iss._div32).
        quotient = abs(left) // abs(right)
        if (left >= 0) != (right >= 0):
            quotient = -quotient
        return _wrap32(quotient)
    return left / right


def _c_mod(left: Any, right: Any) -> Any:
    if isinstance(left, float) or isinstance(right, float):
        # C rejects % on floating operands (use fmod); silently computing
        # a float remainder here would diverge from any compiled target.
        raise InterpError("invalid operands to %: floats are not allowed")
    if right == 0:
        raise InterpError("modulo by zero")
    # Truncated remainder (sign follows the dividend), wrapped to the
    # 32-bit word so the div/mod pair preserves a == (a/b)*b + a%b on
    # every operand pair.  The single overflow corner, INT_MIN % -1,
    # therefore returns 0: its quotient wraps back to INT_MIN (see
    # _c_div), and the ISS-side lowering of % as a - (a/b)*b computes
    # the identical 0 through the same wraps.
    remainder = abs(left) % abs(right)
    return _wrap32(remainder if left >= 0 else -remainder)


def _wrap32(value: int) -> int:
    """Reduce to the signed 32-bit two's-complement image (the ISS word
    size -- see repro.vp.iss)."""
    value &= 0xFFFFFFFF
    return value - 0x1_0000_0000 if value & 0x8000_0000 else value


def _c_shl(left: Any, right: Any) -> int:
    # 32-bit semantics as executed by the ISS: result wraps to a signed
    # word, shift count uses the low 5 bits.
    return _wrap32((int(left) & 0xFFFFFFFF) << (int(right) & 31))


def _c_shr(left: Any, right: Any) -> int:
    return _wrap32(int(left)) >> (int(right) & 31)


def _c_add(left: Any, right: Any) -> Any:
    # int + int models the 32-bit target word and wraps (matching the
    # ISS's add -- both execution paths of the same firmware must agree
    # bit for bit); float arithmetic stays host-precision like C doubles.
    if type(left) is int and type(right) is int:
        return _wrap32(left + right)
    return left + right


def _c_sub(left: Any, right: Any) -> Any:
    if type(left) is int and type(right) is int:
        return _wrap32(left - right)
    return left - right


def _c_mul(left: Any, right: Any) -> Any:
    if type(left) is int and type(right) is int:
        return _wrap32(left * right)
    return left * right


_BIN_HANDLERS: Dict[str, Callable[[Any, Any], Any]] = {
    "+": _c_add,
    "-": _c_sub,
    "*": _c_mul,
    "/": _c_div,
    "%": _c_mod,
    "==": lambda a, b: 1 if a == b else 0,
    "!=": lambda a, b: 1 if a != b else 0,
    "<": lambda a, b: 1 if a < b else 0,
    ">": lambda a, b: 1 if a > b else 0,
    "<=": lambda a, b: 1 if a <= b else 0,
    ">=": lambda a, b: 1 if a >= b else 0,
    "<<": _c_shl,
    ">>": _c_shr,
    "&": lambda a, b: int(a) & int(b),
    "|": lambda a, b: int(a) | int(b),
    "^": lambda a, b: int(a) ^ int(b),
}

_STMT_DISPATCH: Dict[type, Callable] = {
    Decl: Interpreter._exec_decl,
    Assign: Interpreter._exec_assign,
    ExprStmt: Interpreter._exec_exprstmt,
    Block: Interpreter._exec_block,
    If: Interpreter._exec_if,
    While: Interpreter._exec_while,
    For: Interpreter._exec_for,
    Return: Interpreter._exec_return,
    Break: Interpreter._exec_break,
    Continue: Interpreter._exec_continue,
}

_EVAL_DISPATCH: Dict[type, Callable] = {
    IntLit: Interpreter._eval_literal,
    FloatLit: Interpreter._eval_literal,
    StringLit: Interpreter._eval_literal,
    Ident: Interpreter._eval_ident,
    ArrayIndex: Interpreter._eval_index,
    Call: Interpreter._eval_call,
    UnaryOp: Interpreter._eval_unary,
    BinOp: Interpreter._eval_binop,
    Cond: Interpreter._eval_cond,
}


# ---------------------------------------------------------------------------
# intrinsics (callable without declaration, like a tiny libc)
# ---------------------------------------------------------------------------

def _intrinsic_print(interp: Interpreter, args: List[Any]) -> int:
    for arg in args:
        interp.output.append(arg)
    return 0


_INTRINSICS: Dict[str, Callable[[Interpreter, List[Any]], Any]] = {
    "print": _intrinsic_print,
    "abs": lambda interp, args: abs(args[0]),
    "min": lambda interp, args: min(args),
    "max": lambda interp, args: max(args),
    "sqrt": lambda interp, args: math.sqrt(args[0]),
    "floor": lambda interp, args: int(math.floor(args[0])),
    "ceil": lambda interp, args: int(math.ceil(args[0])),
}


def run_program(program: Program, entry: str = "main",
                args: Optional[List[Any]] = None,
                externals: Optional[Dict[str, Callable[..., Any]]] = None,
                step_limit: int = Interpreter.DEFAULT_STEP_LIMIT) -> RunResult:
    """Parse-and-go convenience: interpret ``program`` from ``entry``."""
    interp = Interpreter(program, externals=externals, step_limit=step_limit)
    return interp.run(entry, args)


__all__ = ["ArrayValue", "Cell", "InterpError", "Interpreter", "PointerValue",
           "RunResult", "Value", "run_program"]
