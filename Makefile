# Convenience targets for the reproduction.

PYTHON ?= python

.PHONY: install test bench examples reproduce trace-demo all clean

install:
	$(PYTHON) -m pip install -e .

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

examples:
	@for f in examples/*.py; do \
		echo "== $$f =="; \
		$(PYTHON) $$f > /dev/null || exit 1; \
	done; echo "all examples ran cleanly"

reproduce:
	$(PYTHON) examples/reproduce_all.py

# Cross-layer trace of the JPEG pipeline; open the JSON in Perfetto or
# chrome://tracing.
trace-demo:
	PYTHONPATH=src$(if $(PYTHONPATH),:$(PYTHONPATH)) \
		$(PYTHON) examples/trace_explorer.py --out jpeg_pipeline.trace.json

all: install test bench examples

clean:
	rm -rf .pytest_cache .hypothesis build *.egg-info src/*.egg-info
	find . -name __pycache__ -type d -exec rm -rf {} +
